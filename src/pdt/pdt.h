// Positional Delta Trees — differential updates for column stores.
//
// Paper §1: "column-friendly differential update schemes (PDTs [2]) were
// devised"; §"Transactions": "Transactions in Vectorwise are based on
// Positional Delta Trees."
//
// A PDT records inserts / deletes / modifies against an *immutable* stable
// table image, keyed by SID (the row's position in that image). Because
// deltas are positional — not keyed by value — merging them into a scan is
// a synchronized positional walk: no per-row hash probes or key
// comparisons (experiment E5 quantifies this against a value-keyed delta
// baseline).
//
// Two position spaces:
//  * SID: position in the stable image, 0..base_rows (base_rows = append).
//  * RID: position in the *visible* image (stable image + this PDT).
// Fenwick trees over SID-space give O(log n) SID->RID arithmetic and
// O(log^2 n) RID->locate.
//
// Transactions stack PDTs (read-PDT / write-PDT — transaction.h); inserted
// rows carry a unique iid so an upper layer can delete or modify a lower
// layer's insert.
#ifndef X100_PDT_PDT_H_
#define X100_PDT_PDT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "pdt/fenwick.h"

namespace x100 {

/// A row added by an update, with a process-unique id.
struct InsertedRow {
  uint64_t iid = 0;
  /// Ordering constraint among inserts anchored at the same SID: this row
  /// precedes the (lower-layer or earlier) insert with iid `before_iid`.
  /// 0 = no constraint (row sits at the end of the anchor's insert list,
  /// immediately before the stable row).
  uint64_t before_iid = 0;
  std::vector<Value> values;
};

/// All deltas anchored at one SID.
struct PdtDelta {
  /// Rows inserted *before* stable row `sid` (append uses sid==base_rows).
  std::vector<InsertedRow> inserts;
  /// Stable row `sid` is deleted.
  bool del_stable = false;
  /// Column modifications of stable row `sid`.
  std::map<int, Value> mods;
};

class Pdt {
 public:
  explicit Pdt(int64_t base_rows);

  int64_t base_rows() const { return base_rows_; }
  /// Rows in the visible image defined by (stable image + this PDT).
  int64_t visible_rows() const;
  /// Number of SIDs carrying deltas.
  int64_t num_delta_sids() const {
    return static_cast<int64_t>(by_sid_.size());
  }
  bool empty() const {
    return by_sid_.empty() && deleted_iids_.empty() && mod_iids_.empty();
  }

  // ---- RID-space update API (single-layer view) ---------------------------

  /// Inserts `row` so it becomes the row at position `rid`
  /// (rid == visible_rows() appends). Returns the new row's iid.
  Result<uint64_t> InsertAt(int64_t rid, std::vector<Value> row);

  /// Deletes the visible row at `rid` (stable row or own insert).
  Status DeleteAt(int64_t rid);

  /// Sets column `col` of the visible row at `rid`.
  Status ModifyAt(int64_t rid, int col, Value v);

  // ---- SID/iid-space API (commit replay, stacked transactions) ------------

  /// Appends an insert anchored at `sid` (0..base_rows).
  Status InsertAtSid(int64_t sid, InsertedRow row, int at_index = -1);
  Status DeleteStable(int64_t sid);
  Status ModifyStable(int64_t sid, int col, Value v);
  /// Deletes / modifies an insert of *this* layer by iid.
  Status DeleteOwnInsert(uint64_t iid);
  Status ModifyOwnInsert(uint64_t iid, int col, Value v);
  /// Records a delete / modify of a *lower* layer's insert.
  void DeleteLowerInsert(uint64_t iid);
  void ModifyLowerInsert(uint64_t iid, int col, Value v);

  /// Own insert by iid (nullptr if absent) — ordering resolution in
  /// stacked transactions.
  const InsertedRow* GetOwnInsert(uint64_t iid) const;

  bool IsStableDeleted(int64_t sid) const;
  bool IsLowerInsertDeleted(uint64_t iid) const {
    return deleted_iids_.count(iid) != 0;
  }
  const std::map<int, Value>* LowerInsertMods(uint64_t iid) const {
    auto it = mod_iids_.find(iid);
    return it == mod_iids_.end() ? nullptr : &it->second;
  }
  const std::unordered_set<uint64_t>& deleted_lower_iids() const {
    return deleted_iids_;
  }
  const std::unordered_map<uint64_t, std::map<int, Value>>& lower_iid_mods()
      const {
    return mod_iids_;
  }

  // ---- lookup / merge support ----------------------------------------------

  struct Locator {
    bool is_insert = false;
    int64_t sid = 0;   // stable sid, or anchor sid of the insert
    int index = 0;     // index within the insert list
    uint64_t iid = 0;  // iid of the insert
  };
  /// Maps a visible-image RID to its row (stable or inserted).
  Result<Locator> Locate(int64_t rid) const;

  /// RID of stable row `sid`, or -1 when it is deleted.
  int64_t RidOfStable(int64_t sid) const;

  const PdtDelta* FindDelta(int64_t sid) const;

  /// Invokes fn(sid, delta) for every delta SID in [lo, hi), ascending.
  void ForEachDelta(int64_t lo, int64_t hi,
                    const std::function<void(int64_t, const PdtDelta&)>& fn)
      const;

  /// True when any delta SID lies in [lo, hi). One map probe — the
  /// early-exit test MinMax skipping needs (a scan asks this once per
  /// block group; ForEachDelta would walk every delta in the range just
  /// to learn "at least one").
  bool HasDeltaIn(int64_t lo, int64_t hi) const {
    const auto it = by_sid_.lower_bound(lo);
    return it != by_sid_.end() && it->first < hi;
  }

  /// Deep copy (clone-on-commit snapshot isolation, transaction.h).
  std::unique_ptr<Pdt> Clone() const;

  /// Process-unique insert-id allocator.
  static uint64_t NextIid();

 private:
  /// RID of the first visible slot anchored at `sid` (its inserts precede
  /// the stable row).
  int64_t StartRid(int64_t sid) const;
  PdtDelta& DeltaAt(int64_t sid);

  int64_t base_rows_;
  std::map<int64_t, PdtDelta> by_sid_;
  // Displacement trackers over SID-space (index sid in [0, base_rows]).
  Fenwick ins_counts_;   // inserts anchored at sid
  Fenwick del_counts_;   // stable deletes at sid
  // Cross-layer edits (target iids live in a lower PDT layer).
  std::unordered_set<uint64_t> deleted_iids_;
  std::unordered_map<uint64_t, std::map<int, Value>> mod_iids_;
  // Own-insert index: iid -> anchor sid.
  std::unordered_map<uint64_t, int64_t> iid_sid_;
};

}  // namespace x100

#endif  // X100_PDT_PDT_H_
