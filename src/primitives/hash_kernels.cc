#include "primitives/hash_kernels.h"

#include "primitives/agg_kernels.h"
#include "simd/simd_kernels.h"

namespace x100 {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCount: return "count";
    case AggKind::kSum: return "sum";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kAvg: return "avg";
  }
  return "?";
}

namespace hashk {
namespace {

/// Selection-vector inputs: gather live rows into a small dense chunk,
/// then run the dense SIMD hash over the chunk. hashes[] is indexed by j
/// (live-row position), so the chunked output lands exactly where the
/// scalar loop would have written it.
template <typename T, typename DenseFn>
void HashGatherChunked(int n, const sel_t* sel, const T* col,
                       uint64_t* hashes, bool combine, DenseFn dense) {
  constexpr int kChunk = 64;
  T buf[kChunk];
  for (int j = 0; j < n; j += kChunk) {
    const int m = n - j < kChunk ? n - j : kChunk;
    for (int t = 0; t < m; t++) buf[t] = col[sel[j + t]];
    dense(m, buf, hashes + j, combine);
  }
}

template <typename T, typename DenseFn>
void HashAvx2(int n, const sel_t* sel, const T* col, uint64_t* hashes,
              bool combine, DenseFn dense) {
  if (sel == nullptr) {
    dense(n, col, hashes, combine);
  } else {
    HashGatherChunked(n, sel, col, hashes, combine, dense);
  }
}

}  // namespace

void HashColumn(const Vector& v, int n, const sel_t* sel, uint64_t* hashes,
                bool combine, SimdLevel simd) {
  if (simd == SimdLevel::kAvx2) {
    switch (v.type()) {
      case TypeId::kI32:
      case TypeId::kDate:
        HashAvx2(n, sel, v.Data<int32_t>(), hashes, combine,
                 &simd_avx2::HashI32Dense);
        return;
      case TypeId::kI64:
        HashAvx2(n, sel, v.Data<int64_t>(), hashes, combine,
                 &simd_avx2::HashI64Dense);
        return;
      case TypeId::kF64:
        HashAvx2(n, sel, v.Data<double>(), hashes, combine,
                 &simd_avx2::HashF64Dense);
        return;
      default:
        break;  // bool/i8/i16/str: scalar below
    }
  }
  switch (v.type()) {
    case TypeId::kBool:
      HashColumnT<uint8_t>(n, sel, v.Data<uint8_t>(), hashes, combine);
      break;
    case TypeId::kI8:
      HashColumnT<int8_t>(n, sel, v.Data<int8_t>(), hashes, combine);
      break;
    case TypeId::kI16:
      HashColumnT<int16_t>(n, sel, v.Data<int16_t>(), hashes, combine);
      break;
    case TypeId::kI32:
    case TypeId::kDate:
      HashColumnT<int32_t>(n, sel, v.Data<int32_t>(), hashes, combine);
      break;
    case TypeId::kI64:
      HashColumnT<int64_t>(n, sel, v.Data<int64_t>(), hashes, combine);
      break;
    case TypeId::kF64:
      HashColumnT<double>(n, sel, v.Data<double>(), hashes, combine);
      break;
    case TypeId::kStr:
      HashColumnT<StrRef>(n, sel, v.Data<StrRef>(), hashes, combine);
      break;
  }
}

}  // namespace hashk
}  // namespace x100
