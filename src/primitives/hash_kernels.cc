#include "primitives/hash_kernels.h"

#include "primitives/agg_kernels.h"

namespace x100 {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCount: return "count";
    case AggKind::kSum: return "sum";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kAvg: return "avg";
  }
  return "?";
}

namespace hashk {

void HashColumn(const Vector& v, int n, const sel_t* sel, uint64_t* hashes,
                bool combine) {
  switch (v.type()) {
    case TypeId::kBool:
      HashColumnT<uint8_t>(n, sel, v.Data<uint8_t>(), hashes, combine);
      break;
    case TypeId::kI8:
      HashColumnT<int8_t>(n, sel, v.Data<int8_t>(), hashes, combine);
      break;
    case TypeId::kI16:
      HashColumnT<int16_t>(n, sel, v.Data<int16_t>(), hashes, combine);
      break;
    case TypeId::kI32:
    case TypeId::kDate:
      HashColumnT<int32_t>(n, sel, v.Data<int32_t>(), hashes, combine);
      break;
    case TypeId::kI64:
      HashColumnT<int64_t>(n, sel, v.Data<int64_t>(), hashes, combine);
      break;
    case TypeId::kF64:
      HashColumnT<double>(n, sel, v.Data<double>(), hashes, combine);
      break;
    case TypeId::kStr:
      HashColumnT<StrRef>(n, sel, v.Data<StrRef>(), hashes, combine);
      break;
  }
}

}  // namespace hashk
}  // namespace x100
