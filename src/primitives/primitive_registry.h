// The X100 primitive registry.
//
// X100 executes expressions by interpreting a plan whose leaves are
// *primitives*: flat, type-specialized loops with signatures like
//
//   map_add_i32_vec_i32_val      out[i] = a[i] + c
//   select_lt_f64_vec_f64_val    emit i where a[i] < c
//
// The interpretation cost is paid once per *vector*, not once per tuple —
// that is the source of the paper's ">10x over conventional engines" claim
// (experiment E1) and of the vector-size tradeoff (experiment E2).
//
// Primitives are NULL-oblivious (paper §"NULLs"): they process every
// position including NULL slots, which hold safe values. NULL indicator
// columns are combined by the boolean primitives (map_or / map_and).
#ifndef X100_PRIMITIVES_PRIMITIVE_REGISTRY_H_
#define X100_PRIMITIVES_PRIMITIVE_REGISTRY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "simd/simd.h"
#include "vector/string_heap.h"
#include "vector/vector.h"

namespace x100 {

/// Execution context handed to map primitives (string output allocation).
struct PrimCtx {
  StringHeap* heap = nullptr;
};

/// A map primitive: computes out[i] (or out[sel[j]]) for each live row.
/// `args` point either at full columns ("vec") or at one scalar ("val");
/// which one is baked into the registered kernel, X100-style.
using MapFn = Status (*)(int n, const sel_t* sel, const void* const* args,
                         void* out, PrimCtx* ctx);

/// A select primitive: appends qualifying row indexes to sel_out and
/// returns the match count.
using SelectFn = int (*)(int n, const sel_t* sel_in,
                         const void* const* args, sel_t* sel_out);

/// One argument slot in a primitive signature.
struct ArgSig {
  TypeId type;
  bool is_const;  // "val" (scalar constant) vs "vec" (column)
};

/// Builds the canonical signature string, e.g.
/// BuildSignature("map", "add", {{kI32,false},{kI32,true}})
///   == "map_add_i32_vec_i32_val".
std::string BuildSignature(const std::string& kind, const std::string& op,
                           const std::vector<ArgSig>& args);

struct MapEntry {
  MapFn fn = nullptr;
  TypeId out_type = TypeId::kI64;
  /// The dispatch level `fn` was compiled for: kScalar for the baseline
  /// kernel, or the variant level a lookup resolved to.
  SimdLevel level = SimdLevel::kScalar;
};

/// Process-wide registry. Registration happens once at startup from the
/// kernel translation units (map/string/date/select kernels).
class PrimitiveRegistry {
 public:
  static PrimitiveRegistry* Get();

  void RegisterMap(const std::string& sig, MapFn fn, TypeId out_type);
  void RegisterSelect(const std::string& sig, SelectFn fn);

  /// Registers a SIMD variant of an already-registered scalar primitive.
  /// Variants share the scalar signature and out_type; lookups at `level`
  /// prefer them and fall back to the scalar kernel when absent.
  void RegisterMapVariant(const std::string& sig, SimdLevel level, MapFn fn);
  void RegisterSelectVariant(const std::string& sig, SimdLevel level,
                             SelectFn fn);

  /// Looks up a map primitive; nullptr fn if absent. `level` selects the
  /// registered variant for that dispatch level when one exists (the
  /// returned entry's `level` says which kernel actually resolved);
  /// otherwise the scalar kernel — fallback is always available.
  MapEntry FindMap(const std::string& kind, const std::string& op,
                   const std::vector<ArgSig>& args,
                   SimdLevel level = SimdLevel::kScalar) const;
  SelectFn FindSelect(const std::string& op,
                      const std::vector<ArgSig>& args,
                      SimdLevel level = SimdLevel::kScalar) const;

  /// Number of registered primitives (the paper's "dozens of functions";
  /// reported by bench_e12 and the monitoring example).
  int num_map_primitives() const;
  int num_select_primitives() const;
  /// SIMD variants registered on top of the scalar kernels (0 when the
  /// CPU/build supports none).
  int num_simd_variants() const;

  /// All registered signatures (diagnostics / docs).
  std::vector<std::string> ListSignatures() const;

 private:
  PrimitiveRegistry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

/// Ensures all built-in kernels are registered (idempotent, thread-safe via
/// static init). Called by ExprCompiler and tests.
void EnsureKernelsRegistered();

}  // namespace x100

#endif  // X100_PRIMITIVES_PRIMITIVE_REGISTRY_H_
