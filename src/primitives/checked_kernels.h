// Overflow- and division-checked arithmetic kernels.
//
// Paper §"Error handling and reporting": "Naive implementation for some of
// these would incur a significant overhead, and special algorithms in the
// kernel had to be devised."
//
// The special algorithm used here: compute the whole vector branch-free,
// OR-accumulating a hardware overflow flag (__builtin_*_overflow); only if
// the accumulated flag fires is a second pass made to locate the offending
// tuple for the error message. The common (no-error) case costs one flag
// OR per element and no branches. Experiment E7 benchmarks this against the
// naive per-tuple branch.
//
// The three variants are exposed directly (not just via the registry) so
// the benchmark can compare them head-to-head.
#ifndef X100_PRIMITIVES_CHECKED_KERNELS_H_
#define X100_PRIMITIVES_CHECKED_KERNELS_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"
#include "vector/vector.h"

namespace x100 {

namespace checked {

struct CheckedAdd {
  template <typename T>
  static bool Apply(T a, T b, T* out) {
    return __builtin_add_overflow(a, b, out);
  }
  static constexpr const char* kName = "add";
};
struct CheckedSub {
  template <typename T>
  static bool Apply(T a, T b, T* out) {
    return __builtin_sub_overflow(a, b, out);
  }
  static constexpr const char* kName = "sub";
};
struct CheckedMul {
  template <typename T>
  static bool Apply(T a, T b, T* out) {
    return __builtin_mul_overflow(a, b, out);
  }
  static constexpr const char* kName = "mul";
};

/// Mode 1 (baseline, incorrect for production): no checking at all.
template <typename T, typename OP>
void BinaryUnchecked(int n, const T* a, const T* b, T* out) {
  for (int i = 0; i < n; i++) {
    T r;
    (void)OP::Apply(a[i], b[i], &r);
    out[i] = r;
  }
}

/// Mode 2 (naive): test-and-branch on every tuple, early return.
template <typename T, typename OP>
Status BinaryCheckedNaive(int n, const T* a, const T* b, T* out) {
  for (int i = 0; i < n; i++) {
    T r;
    if (OP::Apply(a[i], b[i], &r)) {
      return Status::Overflow(std::string("integer overflow in ") +
                              OP::kName + " at row " + std::to_string(i));
    }
    out[i] = r;
  }
  return Status::OK();
}

/// Mode 3 (kernel "special algorithm"): branch-free flag accumulation;
/// offending row located only after a flag fires.
template <typename T, typename OP>
Status BinaryCheckedKernel(int n, const T* a, const T* b, T* out) {
  unsigned flag = 0;
  for (int i = 0; i < n; i++) {
    T r;
    flag |= static_cast<unsigned>(OP::Apply(a[i], b[i], &r));
    out[i] = r;
  }
  if (__builtin_expect(flag == 0, 1)) return Status::OK();
  for (int i = 0; i < n; i++) {
    T r;
    if (OP::Apply(a[i], b[i], &r)) {
      return Status::Overflow(std::string("integer overflow in ") +
                              OP::kName + " at row " + std::to_string(i));
    }
  }
  return Status::Internal("overflow flag raised but no row found");
}

/// Integer division with zero-divisor and INT_MIN/-1 detection, vectorized:
/// a validity pass (flag accumulation) then an unchecked divide pass.
template <typename T>
Status DivCheckedKernel(int n, const T* a, const T* b, T* out) {
  unsigned bad = 0;
  for (int i = 0; i < n; i++) {
    bad |= static_cast<unsigned>(b[i] == 0);
    bad |= static_cast<unsigned>(a[i] == std::numeric_limits<T>::min() &&
                                 b[i] == static_cast<T>(-1));
  }
  if (__builtin_expect(bad != 0, 0)) {
    for (int i = 0; i < n; i++) {
      if (b[i] == 0) {
        return Status::DivisionByZero("division by zero at row " +
                                      std::to_string(i));
      }
      if (a[i] == std::numeric_limits<T>::min() &&
          b[i] == static_cast<T>(-1)) {
        return Status::Overflow("integer overflow in div at row " +
                                std::to_string(i));
      }
    }
  }
  for (int i = 0; i < n; i++) out[i] = a[i] / b[i];
  return Status::OK();
}

/// Naive integer division: branch per tuple.
template <typename T>
Status DivCheckedNaive(int n, const T* a, const T* b, T* out) {
  for (int i = 0; i < n; i++) {
    if (b[i] == 0) {
      return Status::DivisionByZero("division by zero at row " +
                                    std::to_string(i));
    }
    if (a[i] == std::numeric_limits<T>::min() && b[i] == static_cast<T>(-1)) {
      return Status::Overflow("integer overflow in div at row " +
                              std::to_string(i));
    }
    out[i] = a[i] / b[i];
  }
  return Status::OK();
}

}  // namespace checked

/// Registers checked add/sub/mul/div/mod as the *default* integer
/// arithmetic primitives ("map_add_i32_vec_i32_vec", …).
void RegisterCheckedKernels();

}  // namespace x100

#endif  // X100_PRIMITIVES_CHECKED_KERNELS_H_
