#include "primitives/agg_kernels.h"

#include "simd/simd_kernels.h"

namespace x100 {
namespace agg {
namespace {

/// Loads row i of the typed input column as (dv, iv) exactly like the
/// operator's inline loop did: f64 fills dv (iv stays 0), every int width
/// sign-extends into iv (dv stays 0).
inline void LoadRow(TypeId in_type, const void* data, int i, double* dv,
                    int64_t* iv) {
  *dv = 0;
  *iv = 0;
  if (in_type == TypeId::kF64) {
    *dv = static_cast<const double*>(data)[i];
  } else if (in_type == TypeId::kI64) {
    *iv = static_cast<const int64_t*>(data)[i];
  } else if (in_type == TypeId::kI16) {
    *iv = static_cast<const int16_t*>(data)[i];
  } else if (in_type == TypeId::kI8 || in_type == TypeId::kBool) {
    *iv = static_cast<const int8_t*>(data)[i];
  } else {
    *iv = static_cast<const int32_t*>(data)[i];
  }
}

void UpdateAccumScalar(AggKind kind, TypeId in_type, int n, const sel_t* sel,
                       const uint32_t* gid, const uint8_t* nulls,
                       const void* data, int64_t* i64, double* f64,
                       int64_t* count) {
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    if (nulls != nullptr && nulls[i]) continue;
    const uint32_t g = gid ? gid[j] : 0;
    double dv;
    int64_t iv;
    LoadRow(in_type, data, i, &dv, &iv);
    switch (kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (in_type == TypeId::kF64) {
          f64[g] += dv;
        } else {
          // Wrapping add: matches the AVX2 lane-wise add_epi64 on overflow.
          i64[g] = static_cast<int64_t>(static_cast<uint64_t>(i64[g]) +
                                        static_cast<uint64_t>(iv));
          f64[g] += static_cast<double>(iv);
        }
        break;
      case AggKind::kMin:
        if (count[g] == 0 ||
            (in_type == TypeId::kF64 ? dv < f64[g] : iv < i64[g])) {
          f64[g] = dv;
          i64[g] = iv;
        }
        break;
      case AggKind::kMax:
        if (count[g] == 0 ||
            (in_type == TypeId::kF64 ? dv > f64[g] : iv > i64[g])) {
          f64[g] = dv;
          i64[g] = iv;
        }
        break;
    }
    count[g]++;
  }
}

/// Keyless + dense AVX2 paths. Returns false when no fast path covers
/// this (kind, in_type) — the caller falls through to the scalar loop.
bool UpdateAccumKeylessAvx2(AggKind kind, TypeId in_type, int n,
                            const uint8_t* nulls, const void* data,
                            int64_t* i64, double* f64, int64_t* count) {
  const bool is_i32 = in_type == TypeId::kI32 || in_type == TypeId::kDate;
  const bool is_i64 = in_type == TypeId::kI64;
  switch (kind) {
    case AggKind::kCount: {
      count[0] += simd_avx2::CountNonNull(n, nulls);
      return true;
    }
    case AggKind::kSum:
    case AggKind::kAvg: {
      if (!is_i32 && !is_i64) return false;  // f64 sum is order-sensitive
      // i64 sum + count vectorize; the f64 shadow replays the exact
      // row-order FP additions of the scalar loop (non-associative).
      if (is_i32) {
        const auto* v = static_cast<const int32_t*>(data);
        simd_avx2::SumI32Keyless(n, v, nulls, &i64[0], &count[0]);
        double s = f64[0];
        for (int i = 0; i < n; i++) {
          if (nulls != nullptr && nulls[i]) continue;
          s += static_cast<double>(static_cast<int64_t>(v[i]));
        }
        f64[0] = s;
      } else {
        const auto* v = static_cast<const int64_t*>(data);
        simd_avx2::SumI64Keyless(n, v, nulls, &i64[0], &count[0]);
        double s = f64[0];
        for (int i = 0; i < n; i++) {
          if (nulls != nullptr && nulls[i]) continue;
          s += static_cast<double>(v[i]);
        }
        f64[0] = s;
      }
      return true;
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      if (!is_i32 && !is_i64) return false;
      const bool is_min = kind == AggKind::kMin;
      const bool had = count[0] > 0;
      // Min/max are order-independent: fold the vector's extremum, then
      // merge against the existing best exactly as row-at-a-time would.
      if (is_i32) {
        int32_t best = 0;
        int64_t cnt = 0;
        if (!simd_avx2::MinMaxI32Keyless(n, static_cast<const int32_t*>(data),
                                         nulls, is_min, &best, &cnt)) {
          return true;  // all rows NULL: nothing changes
        }
        count[0] += cnt;
        const int64_t b = best;
        if (!had || (is_min ? b < i64[0] : b > i64[0])) {
          i64[0] = b;
          f64[0] = 0.0;  // the scalar int path stores dv == 0 on adopt
        }
      } else {
        int64_t best = 0;
        int64_t cnt = 0;
        if (!simd_avx2::MinMaxI64Keyless(n, static_cast<const int64_t*>(data),
                                         nulls, is_min, &best, &cnt)) {
          return true;
        }
        count[0] += cnt;
        if (!had || (is_min ? best < i64[0] : best > i64[0])) {
          i64[0] = best;
          f64[0] = 0.0;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace

void UpdateAccum(AggKind kind, TypeId in_type, int n, const sel_t* sel,
                 const uint32_t* gid, const uint8_t* nulls, const void* data,
                 int64_t* i64, double* f64, int64_t* count, SimdLevel simd) {
  if (simd == SimdLevel::kAvx2 && gid == nullptr && sel == nullptr) {
    if (UpdateAccumKeylessAvx2(kind, in_type, n, nulls, data, i64, f64,
                               count)) {
      return;
    }
  }
  UpdateAccumScalar(kind, in_type, n, sel, gid, nulls, data, i64, f64, count);
}

void UpdateCountStar(int n, const uint32_t* gid, int64_t* count) {
  if (gid == nullptr) {
    count[0] += n;
    return;
  }
  for (int j = 0; j < n; j++) count[gid[j]]++;
}

}  // namespace agg
}  // namespace x100
