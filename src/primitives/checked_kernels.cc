#include "primitives/checked_kernels.h"

#include "primitives/kernel_templates.h"
#include "primitives/primitive_registry.h"

namespace x100 {

namespace {

using checked::CheckedAdd;
using checked::CheckedMul;
using checked::CheckedSub;

// Registry adapter around BinaryCheckedKernel supporting vec/val shapes.
template <typename T, typename OP, bool AC, bool BC>
Status MapCheckedBinary(int n, const sel_t* sel, const void* const* args,
                        void* out, PrimCtx*) {
  T* o = static_cast<T*>(out);
  unsigned flag = 0;
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      T r;
      flag |= static_cast<unsigned>(
          OP::Apply(Arg<T, AC>(args[0], i), Arg<T, BC>(args[1], i), &r));
      o[i] = r;
    }
  } else {
    for (int i = 0; i < n; i++) {
      T r;
      flag |= static_cast<unsigned>(
          OP::Apply(Arg<T, AC>(args[0], i), Arg<T, BC>(args[1], i), &r));
      o[i] = r;
    }
  }
  if (__builtin_expect(flag == 0, 1)) return Status::OK();
  // Slow path: locate the offending row for a precise error message.
  const int limit = n;
  for (int j = 0; j < limit; j++) {
    const int i = sel ? sel[j] : j;
    T r;
    if (OP::Apply(Arg<T, AC>(args[0], i), Arg<T, BC>(args[1], i), &r)) {
      return Status::Overflow(std::string("integer overflow in ") +
                              OP::kName + " at row " + std::to_string(i));
    }
  }
  return Status::Internal("overflow flag raised but no row found");
}

template <typename T, bool AC, bool BC>
Status MapCheckedDiv(int n, const sel_t* sel, const void* const* args,
                     void* out, PrimCtx*) {
  T* o = static_cast<T*>(out);
  unsigned bad = 0;
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      const T b = Arg<T, BC>(args[1], i);
      const T a = Arg<T, AC>(args[0], i);
      bad |= static_cast<unsigned>(b == 0);
      bad |= static_cast<unsigned>(a == std::numeric_limits<T>::min() &&
                                   b == static_cast<T>(-1));
    }
  } else {
    for (int i = 0; i < n; i++) {
      const T b = Arg<T, BC>(args[1], i);
      const T a = Arg<T, AC>(args[0], i);
      bad |= static_cast<unsigned>(b == 0);
      bad |= static_cast<unsigned>(a == std::numeric_limits<T>::min() &&
                                   b == static_cast<T>(-1));
    }
  }
  if (__builtin_expect(bad != 0, 0)) {
    for (int j = 0; j < n; j++) {
      const int i = sel ? sel[j] : j;
      if (Arg<T, BC>(args[1], i) == 0) {
        return Status::DivisionByZero("division by zero at row " +
                                      std::to_string(i));
      }
      if (Arg<T, AC>(args[0], i) == std::numeric_limits<T>::min() &&
          Arg<T, BC>(args[1], i) == static_cast<T>(-1)) {
        return Status::Overflow("integer overflow in div at row " +
                                std::to_string(i));
      }
    }
  }
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = Arg<T, AC>(args[0], i) / Arg<T, BC>(args[1], i);
    }
  } else {
    for (int i = 0; i < n; i++) {
      o[i] = Arg<T, AC>(args[0], i) / Arg<T, BC>(args[1], i);
    }
  }
  return Status::OK();
}

template <typename T, bool AC, bool BC>
Status MapCheckedMod(int n, const sel_t* sel, const void* const* args,
                     void* out, PrimCtx*) {
  T* o = static_cast<T*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    const T b = Arg<T, BC>(args[1], i);
    if (b == 0) {
      return Status::DivisionByZero("modulo by zero at row " +
                                    std::to_string(i));
    }
    const T a = Arg<T, AC>(args[0], i);
    if (a == std::numeric_limits<T>::min() && b == static_cast<T>(-1)) {
      o[i] = 0;
    } else {
      o[i] = a % b;
    }
  }
  return Status::OK();
}

// Float division with SQL division-by-zero detection.
template <bool AC, bool BC>
Status MapCheckedDivF64(int n, const sel_t* sel, const void* const* args,
                        void* out, PrimCtx*) {
  double* o = static_cast<double*>(out);
  unsigned bad = 0;
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    bad |= static_cast<unsigned>(Arg<double, BC>(args[1], i) == 0.0);
  }
  if (__builtin_expect(bad != 0, 0)) {
    for (int j = 0; j < n; j++) {
      const int i = sel ? sel[j] : j;
      if (Arg<double, BC>(args[1], i) == 0.0) {
        return Status::DivisionByZero("division by zero at row " +
                                      std::to_string(i));
      }
    }
  }
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    o[i] = Arg<double, AC>(args[0], i) / Arg<double, BC>(args[1], i);
  }
  return Status::OK();
}

template <typename T, typename OP>
void RegChecked(const char* op, TypeId t) {
  auto* reg = PrimitiveRegistry::Get();
  reg->RegisterMap(BuildSignature("map", op, {{t, false}, {t, false}}),
                   &MapCheckedBinary<T, OP, false, false>, t);
  reg->RegisterMap(BuildSignature("map", op, {{t, false}, {t, true}}),
                   &MapCheckedBinary<T, OP, false, true>, t);
  reg->RegisterMap(BuildSignature("map", op, {{t, true}, {t, false}}),
                   &MapCheckedBinary<T, OP, true, false>, t);
}

template <typename T>
void RegCheckedDivMod(TypeId t) {
  auto* reg = PrimitiveRegistry::Get();
  reg->RegisterMap(BuildSignature("map", "div", {{t, false}, {t, false}}),
                   &MapCheckedDiv<T, false, false>, t);
  reg->RegisterMap(BuildSignature("map", "div", {{t, false}, {t, true}}),
                   &MapCheckedDiv<T, false, true>, t);
  reg->RegisterMap(BuildSignature("map", "div", {{t, true}, {t, false}}),
                   &MapCheckedDiv<T, true, false>, t);
  reg->RegisterMap(BuildSignature("map", "mod", {{t, false}, {t, false}}),
                   &MapCheckedMod<T, false, false>, t);
  reg->RegisterMap(BuildSignature("map", "mod", {{t, false}, {t, true}}),
                   &MapCheckedMod<T, false, true>, t);
}

}  // namespace

void RegisterCheckedKernels() {
  auto* reg = PrimitiveRegistry::Get();

  // Default integer arithmetic is overflow-checked (production behaviour).
  RegChecked<int32_t, CheckedAdd>("add", TypeId::kI32);
  RegChecked<int64_t, CheckedAdd>("add", TypeId::kI64);
  RegChecked<int32_t, CheckedSub>("sub", TypeId::kI32);
  RegChecked<int64_t, CheckedSub>("sub", TypeId::kI64);
  RegChecked<int32_t, CheckedMul>("mul", TypeId::kI32);
  RegChecked<int64_t, CheckedMul>("mul", TypeId::kI64);

  RegCheckedDivMod<int32_t>(TypeId::kI32);
  RegCheckedDivMod<int64_t>(TypeId::kI64);

  reg->RegisterMap(BuildSignature("map", "div",
                                  {{TypeId::kF64, false}, {TypeId::kF64, false}}),
                   &MapCheckedDivF64<false, false>, TypeId::kF64);
  reg->RegisterMap(BuildSignature("map", "div",
                                  {{TypeId::kF64, false}, {TypeId::kF64, true}}),
                   &MapCheckedDivF64<false, true>, TypeId::kF64);
  reg->RegisterMap(BuildSignature("map", "div",
                                  {{TypeId::kF64, true}, {TypeId::kF64, false}}),
                   &MapCheckedDivF64<true, false>, TypeId::kF64);
}

}  // namespace x100
