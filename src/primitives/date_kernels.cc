// Date function kernels (the other half of "Many Functions").
#include "primitives/kernel_templates.h"
#include "primitives/primitive_registry.h"

namespace x100 {

namespace {

struct YearOp {
  static int32_t Apply(int32_t d) { return DateYear(d); }
};
struct MonthOp {
  static int32_t Apply(int32_t d) { return DateMonth(d); }
};
struct DayOp {
  static int32_t Apply(int32_t d) { return DateDay(d); }
};
struct QuarterOp {
  static int32_t Apply(int32_t d) { return (DateMonth(d) - 1) / 3 + 1; }
};
// ISO day-of-week, 1 = Monday .. 7 = Sunday. 1970-01-01 was a Thursday (4).
struct DayOfWeekOp {
  static int32_t Apply(int32_t d) {
    const int32_t dow = (((d % 7) + 7) % 7 + 3) % 7 + 1;
    return dow;
  }
};
struct DayOfYearOp {
  static int32_t Apply(int32_t d) {
    return d - MakeDate(DateYear(d), 1, 1) + 1;
  }
};
// First day of the date's month (used to expand date_trunc('month', x)).
struct TruncMonthOp {
  static int32_t Apply(int32_t d) {
    return MakeDate(DateYear(d), DateMonth(d), 1);
  }
};
struct TruncYearOp {
  static int32_t Apply(int32_t d) { return MakeDate(DateYear(d), 1, 1); }
};

template <typename OP>
void RegDateUnary(const char* op, TypeId out) {
  PrimitiveRegistry::Get()->RegisterMap(
      BuildSignature("map", op, {{TypeId::kDate, false}}),
      &MapUnary<int32_t, int32_t, OP, false>, out);
}

// make_date(y, m, d) with validation — "incorrect function parameters" are
// a detected error class in the paper.
Status MapMakeDate(int n, const sel_t* sel, const void* const* args,
                   void* out, PrimCtx*) {
  const int32_t* y = static_cast<const int32_t*>(args[0]);
  const int32_t* m = static_cast<const int32_t*>(args[1]);
  const int32_t* d = static_cast<const int32_t*>(args[2]);
  int32_t* o = static_cast<int32_t*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    if (m[i] < 1 || m[i] > 12 || d[i] < 1 || d[i] > 31 || y[i] < 1 ||
        y[i] > 9999) {
      return Status::InvalidArgument(
          "make_date: invalid date " + std::to_string(y[i]) + "-" +
          std::to_string(m[i]) + "-" + std::to_string(d[i]));
    }
    o[i] = MakeDate(y[i], m[i], d[i]);
  }
  return Status::OK();
}

}  // namespace

void RegisterDateKernels() {
  RegDateUnary<YearOp>("year", TypeId::kI32);
  RegDateUnary<MonthOp>("month", TypeId::kI32);
  RegDateUnary<DayOp>("day", TypeId::kI32);
  RegDateUnary<QuarterOp>("quarter", TypeId::kI32);
  RegDateUnary<DayOfWeekOp>("dayofweek", TypeId::kI32);
  RegDateUnary<DayOfYearOp>("dayofyear", TypeId::kI32);
  RegDateUnary<TruncMonthOp>("trunc_month", TypeId::kDate);
  RegDateUnary<TruncYearOp>("trunc_year", TypeId::kDate);

  PrimitiveRegistry::Get()->RegisterMap(
      BuildSignature("map", "make_date",
                     {{TypeId::kI32, false},
                      {TypeId::kI32, false},
                      {TypeId::kI32, false}}),
      &MapMakeDate, TypeId::kDate);
}

}  // namespace x100
