// Selection primitives: filters that emit selection vectors instead of
// copying surviving tuples (the X100 select_* primitive family).
#include "primitives/kernel_templates.h"
#include "primitives/primitive_registry.h"

namespace x100 {

namespace {

template <typename T, typename OP>
void RegSelect(const char* op, TypeId t) {
  auto* reg = PrimitiveRegistry::Get();
  reg->RegisterSelect(BuildSignature("select", op, {{t, false}, {t, false}}),
                      &SelectBinary<T, T, OP, false, false>);
  reg->RegisterSelect(BuildSignature("select", op, {{t, false}, {t, true}}),
                      &SelectBinary<T, T, OP, false, true>);
  reg->RegisterSelect(BuildSignature("select", op, {{t, true}, {t, false}}),
                      &SelectBinary<T, T, OP, true, false>);
}

template <typename T>
void RegAllSelects(TypeId t) {
  RegSelect<T, EqOp>("eq", t);
  RegSelect<T, NeOp>("ne", t);
  RegSelect<T, LtOp>("lt", t);
  RegSelect<T, LeOp>("le", t);
  RegSelect<T, GtOp>("gt", t);
  RegSelect<T, GeOp>("ge", t);
}

// Filter on an existing boolean column (e.g. the output of map_and).
int SelectTrue(int n, const sel_t* sel_in, const void* const* args,
               sel_t* sel_out) {
  const uint8_t* b = static_cast<const uint8_t*>(args[0]);
  int k = 0;
  if (sel_in) {
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += b[i] ? 1 : 0;
    }
  } else {
    for (int i = 0; i < n; i++) {
      sel_out[k] = i;
      k += b[i] ? 1 : 0;
    }
  }
  return k;
}

// Filter keeping rows whose NULL indicator is clear (strict WHERE
// semantics: NULL predicate results do not qualify).
int SelectNotNull(int n, const sel_t* sel_in, const void* const* args,
                  sel_t* sel_out) {
  const uint8_t* nulls = static_cast<const uint8_t*>(args[0]);
  int k = 0;
  if (sel_in) {
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      sel_out[k] = i;
      k += nulls[i] ? 0 : 1;
    }
  } else {
    for (int i = 0; i < n; i++) {
      sel_out[k] = i;
      k += nulls[i] ? 0 : 1;
    }
  }
  return k;
}

}  // namespace

void RegisterSelectKernels() {
  RegAllSelects<int8_t>(TypeId::kI8);
  RegAllSelects<int16_t>(TypeId::kI16);
  RegAllSelects<int32_t>(TypeId::kI32);
  RegAllSelects<int64_t>(TypeId::kI64);
  RegAllSelects<double>(TypeId::kF64);
  RegAllSelects<StrRef>(TypeId::kStr);
  RegAllSelects<int32_t>(TypeId::kDate);

  auto* reg = PrimitiveRegistry::Get();
  reg->RegisterSelect(
      BuildSignature("select", "true", {{TypeId::kBool, false}}),
      &SelectTrue);
  reg->RegisterSelect(
      BuildSignature("select", "notnull", {{TypeId::kBool, false}}),
      &SelectNotNull);
}

}  // namespace x100
