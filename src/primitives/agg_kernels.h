// Aggregation update kernels: fold one vector of agg input into the
// accumulator arrays (the X100 "aggr_*" primitive family). HashAggOp
// drives these after computing group ids for a whole vector; pulling the
// row loop out of the operator lets the keyless/dense cases ride the SIMD
// fast paths while every grouped case keeps the exact scalar semantics.
#ifndef X100_PRIMITIVES_AGG_KERNELS_H_
#define X100_PRIMITIVES_AGG_KERNELS_H_

#include <cstdint>

#include "common/types.h"
#include "simd/simd.h"
#include "vector/vector.h"

namespace x100 {

/// Identifies an aggregate function in plans and operators.
enum class AggKind : uint8_t {
  kCount,     // COUNT(*) or COUNT(x)
  kSum,
  kMin,
  kMax,
  kAvg,       // computed as sum + count, finalized to f64
};

const char* AggKindName(AggKind k);

namespace agg {

/// Folds `data` (a typed column of `in_type`) into one accumulator set.
/// Exact engine semantics per live non-NULL row i with group g = gid[j]
/// (gid == nullptr means keyless: every row hits group 0):
///   kCount:      count[g]++
///   kSum/kAvg:   f64 input: f64[g] += v;  int input: i64[g] += v AND
///                f64[g] += double(v) (the f64 shadow accumulates in row
///                order — FP addition is non-associative, so it is never
///                vectorized); then count[g]++
///   kMin/kMax:   adopt v when count[g] == 0 or v beats the current best
///                (f64[g]/i64[g] both overwritten; int inputs store 0.0
///                into f64[g]); then count[g]++
/// SIMD fast paths exist for keyless + dense (sel == nullptr) int sum /
/// min / max and for COUNT(x); they mask NULL lanes rather than trusting
/// NULL-slot values and produce bit-identical accumulator state.
void UpdateAccum(AggKind kind, TypeId in_type, int n, const sel_t* sel,
                 const uint32_t* gid, const uint8_t* nulls, const void* data,
                 int64_t* i64, double* f64, int64_t* count,
                 SimdLevel simd = SimdLevel::kScalar);

/// COUNT(*): no input column, no NULL skip — every live row counts.
void UpdateCountStar(int n, const uint32_t* gid, int64_t* count);

}  // namespace agg
}  // namespace x100

#endif  // X100_PRIMITIVES_AGG_KERNELS_H_
