// Aggregation update kernels: given per-row group slots, fold a vector of
// inputs into accumulator arrays. HashAggOp drives these after computing
// group ids for a whole vector (the X100 "aggr_*" primitive family).
#ifndef X100_PRIMITIVES_AGG_KERNELS_H_
#define X100_PRIMITIVES_AGG_KERNELS_H_

#include <cstdint>

#include "vector/vector.h"

namespace x100 {

/// Identifies an aggregate function in plans and operators.
enum class AggKind : uint8_t {
  kCount,     // COUNT(*) or COUNT(x)
  kSum,
  kMin,
  kMax,
  kAvg,       // computed as sum + count, finalized to f64
};

const char* AggKindName(AggKind k);

namespace agg {

template <typename T, typename ACC>
inline void SumUpdate(int n, const sel_t* sel, const uint32_t* gid,
                      const T* in, ACC* acc) {
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    acc[gid[j]] += static_cast<ACC>(in[i]);
  }
}

inline void CountUpdate(int n, const uint32_t* gid, int64_t* acc) {
  for (int j = 0; j < n; j++) acc[gid[j]]++;
}

/// COUNT(x): skip NULLs via the indicator column.
inline void CountNonNullUpdate(int n, const sel_t* sel, const uint32_t* gid,
                               const uint8_t* nulls, int64_t* acc) {
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    acc[gid[j]] += nulls && nulls[i] ? 0 : 1;
  }
}

template <typename T>
inline void MinUpdate(int n, const sel_t* sel, const uint32_t* gid,
                      const T* in, T* acc, uint8_t* seen) {
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    const uint32_t g = gid[j];
    if (!seen[g] || in[i] < acc[g]) {
      acc[g] = in[i];
      seen[g] = 1;
    }
  }
}

template <typename T>
inline void MaxUpdate(int n, const sel_t* sel, const uint32_t* gid,
                      const T* in, T* acc, uint8_t* seen) {
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    const uint32_t g = gid[j];
    if (!seen[g] || in[i] > acc[g]) {
      acc[g] = in[i];
      seen[g] = 1;
    }
  }
}

}  // namespace agg
}  // namespace x100

#endif  // X100_PRIMITIVES_AGG_KERNELS_H_
