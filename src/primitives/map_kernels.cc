// Registration of arithmetic, comparison, logical, cast and conditional map
// primitives.
#include "primitives/kernel_templates.h"
#include "primitives/primitive_registry.h"

namespace x100 {

namespace {

PrimitiveRegistry* Reg() { return PrimitiveRegistry::Get(); }

// Registers the three argument shapes of a same-type binary op.
template <typename T, typename OP>
void RegBinary(const char* op, TypeId t, TypeId out) {
  Reg()->RegisterMap(
      BuildSignature("map", op, {{t, false}, {t, false}}),
      &MapBinary<T, T, T, OP, false, false>, out);
  Reg()->RegisterMap(
      BuildSignature("map", op, {{t, false}, {t, true}}),
      &MapBinary<T, T, T, OP, false, true>, out);
  Reg()->RegisterMap(
      BuildSignature("map", op, {{t, true}, {t, false}}),
      &MapBinary<T, T, T, OP, true, false>, out);
}

// Comparisons: output is bool regardless of input type.
template <typename T, typename OP>
void RegCompare(const char* op, TypeId t) {
  Reg()->RegisterMap(
      BuildSignature("map", op, {{t, false}, {t, false}}),
      &MapBinary<T, T, uint8_t, OP, false, false>, TypeId::kBool);
  Reg()->RegisterMap(
      BuildSignature("map", op, {{t, false}, {t, true}}),
      &MapBinary<T, T, uint8_t, OP, false, true>, TypeId::kBool);
  Reg()->RegisterMap(
      BuildSignature("map", op, {{t, true}, {t, false}}),
      &MapBinary<T, T, uint8_t, OP, true, false>, TypeId::kBool);
}

template <typename T>
void RegAllCompares(TypeId t) {
  RegCompare<T, EqOp>("eq", t);
  RegCompare<T, NeOp>("ne", t);
  RegCompare<T, LtOp>("lt", t);
  RegCompare<T, LeOp>("le", t);
  RegCompare<T, GtOp>("gt", t);
  RegCompare<T, GeOp>("ge", t);
}

struct AndOp {
  static uint8_t Apply(uint8_t a, uint8_t b) { return a & b; }
};
struct OrOp {
  static uint8_t Apply(uint8_t a, uint8_t b) { return a | b; }
};
struct XorOp {
  static uint8_t Apply(uint8_t a, uint8_t b) {
    return static_cast<uint8_t>((a ^ b) & 1);
  }
};
struct NotOp {
  static uint8_t Apply(uint8_t a) { return static_cast<uint8_t>(a ^ 1); }
};
struct NegI64Op {
  static int64_t Apply(int64_t a) { return WrapSub<int64_t>(0, a); }
};
struct NegI32Op {
  static int32_t Apply(int32_t a) { return WrapSub<int32_t>(0, a); }
};
struct NegF64Op {
  static double Apply(double a) { return -a; }
};
struct AbsF64Op {
  static double Apply(double a) { return a < 0 ? -a : a; }
};

// Cast kernel: out[i] = static_cast<TO>(a[i]).
template <typename TA, typename TO>
struct CastOp {
  static TO Apply(TA a) { return static_cast<TO>(a); }
};

template <typename TA, typename TO>
void RegCast(TypeId from, TypeId to) {
  std::string op = std::string("cast_") + TypeName(to);
  Reg()->RegisterMap(BuildSignature("map", op, {{from, false}}),
                     &MapUnary<TA, TO, CastOp<TA, TO>, false>, to);
}

// if-then-else: out[i] = cond[i] ? a[i] : b[i].
template <typename T, bool AC, bool BC>
Status MapIfThenElse(int n, const sel_t* sel, const void* const* args,
                     void* out, PrimCtx*) {
  const uint8_t* cond = static_cast<const uint8_t*>(args[0]);
  T* o = static_cast<T*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = cond[i] ? Arg<T, AC>(args[1], i) : Arg<T, BC>(args[2], i);
    }
  } else {
    for (int i = 0; i < n; i++) {
      o[i] = cond[i] ? Arg<T, AC>(args[1], i) : Arg<T, BC>(args[2], i);
    }
  }
  return Status::OK();
}

template <typename T>
void RegIfThenElse(TypeId t) {
  const ArgSig c{TypeId::kBool, false};
  Reg()->RegisterMap(
      BuildSignature("map", "ifthenelse", {c, {t, false}, {t, false}}),
      &MapIfThenElse<T, false, false>, t);
  Reg()->RegisterMap(
      BuildSignature("map", "ifthenelse", {c, {t, false}, {t, true}}),
      &MapIfThenElse<T, false, true>, t);
  Reg()->RegisterMap(
      BuildSignature("map", "ifthenelse", {c, {t, true}, {t, false}}),
      &MapIfThenElse<T, true, false>, t);
  Reg()->RegisterMap(
      BuildSignature("map", "ifthenelse", {c, {t, true}, {t, true}}),
      &MapIfThenElse<T, true, true>, t);
}

struct F64DivOp {
  static double Apply(double a, double b) { return a / b; }
};

}  // namespace

void RegisterMapKernels() {
  // Unchecked wrapping arithmetic ("_unchecked" suffix; the default add /
  // sub / mul for integers are the overflow-checked kernels registered in
  // checked_kernels.cc, because a production system must detect overflow —
  // paper §"Error handling and reporting").
  RegBinary<int32_t, AddOp>("add_unchecked", TypeId::kI32, TypeId::kI32);
  RegBinary<int64_t, AddOp>("add_unchecked", TypeId::kI64, TypeId::kI64);
  RegBinary<int32_t, SubOp>("sub_unchecked", TypeId::kI32, TypeId::kI32);
  RegBinary<int64_t, SubOp>("sub_unchecked", TypeId::kI64, TypeId::kI64);
  RegBinary<int32_t, MulOp>("mul_unchecked", TypeId::kI32, TypeId::kI32);
  RegBinary<int64_t, MulOp>("mul_unchecked", TypeId::kI64, TypeId::kI64);

  // Float arithmetic never traps; register as the plain ops.
  RegBinary<double, AddOp>("add", TypeId::kF64, TypeId::kF64);
  RegBinary<double, SubOp>("sub", TypeId::kF64, TypeId::kF64);
  RegBinary<double, MulOp>("mul", TypeId::kF64, TypeId::kF64);

  // Comparisons for every orderable type.
  RegAllCompares<int8_t>(TypeId::kI8);
  RegAllCompares<int16_t>(TypeId::kI16);
  RegAllCompares<int32_t>(TypeId::kI32);
  RegAllCompares<int64_t>(TypeId::kI64);
  RegAllCompares<double>(TypeId::kF64);
  RegAllCompares<StrRef>(TypeId::kStr);
  RegAllCompares<int32_t>(TypeId::kDate);

  // Boolean logic (used directly and for NULL-indicator propagation).
  RegBinary<uint8_t, AndOp>("and", TypeId::kBool, TypeId::kBool);
  RegBinary<uint8_t, OrOp>("or", TypeId::kBool, TypeId::kBool);
  RegBinary<uint8_t, XorOp>("xor", TypeId::kBool, TypeId::kBool);
  Reg()->RegisterMap(BuildSignature("map", "not", {{TypeId::kBool, false}}),
                     &MapUnary<uint8_t, uint8_t, NotOp, false>,
                     TypeId::kBool);

  // Negation / abs.
  Reg()->RegisterMap(BuildSignature("map", "neg", {{TypeId::kI32, false}}),
                     &MapUnary<int32_t, int32_t, NegI32Op, false>,
                     TypeId::kI32);
  Reg()->RegisterMap(BuildSignature("map", "neg", {{TypeId::kI64, false}}),
                     &MapUnary<int64_t, int64_t, NegI64Op, false>,
                     TypeId::kI64);
  Reg()->RegisterMap(BuildSignature("map", "neg", {{TypeId::kF64, false}}),
                     &MapUnary<double, double, NegF64Op, false>,
                     TypeId::kF64);
  Reg()->RegisterMap(BuildSignature("map", "abs", {{TypeId::kF64, false}}),
                     &MapUnary<double, double, AbsF64Op, false>,
                     TypeId::kF64);

  // Casts used by the cross compiler's implicit coercions.
  RegCast<int8_t, int32_t>(TypeId::kI8, TypeId::kI32);
  RegCast<int16_t, int32_t>(TypeId::kI16, TypeId::kI32);
  RegCast<int8_t, int64_t>(TypeId::kI8, TypeId::kI64);
  RegCast<int16_t, int64_t>(TypeId::kI16, TypeId::kI64);
  RegCast<int32_t, int64_t>(TypeId::kI32, TypeId::kI64);
  RegCast<int32_t, double>(TypeId::kI32, TypeId::kF64);
  RegCast<int64_t, double>(TypeId::kI64, TypeId::kF64);
  RegCast<int8_t, double>(TypeId::kI8, TypeId::kF64);
  RegCast<int16_t, double>(TypeId::kI16, TypeId::kF64);

  // Conditionals (rewriter expands COALESCE / NULLIF / CASE into these).
  RegIfThenElse<int32_t>(TypeId::kI32);
  RegIfThenElse<int64_t>(TypeId::kI64);
  RegIfThenElse<double>(TypeId::kF64);
  RegIfThenElse<uint8_t>(TypeId::kBool);
  RegIfThenElse<StrRef>(TypeId::kStr);
  RegIfThenElse<int32_t>(TypeId::kDate);

  // Float division: SQL still errors on x/0, handled by checked kernel in
  // checked_kernels.cc; this unchecked variant backs internal math.
  RegBinary<double, F64DivOp>("div_unchecked", TypeId::kF64, TypeId::kF64);

  // Date arithmetic: date +/- days, date difference in days.
  RegBinary<int32_t, AddOp>("add", TypeId::kDate, TypeId::kDate);
  RegBinary<int32_t, SubOp>("sub", TypeId::kDate, TypeId::kDate);
}

}  // namespace x100
