// Shared kernel loop templates. Each instantiation is one X100 primitive:
// a tight, branch-light loop over a vector, with the vec/val argument shape
// resolved at compile time.
#ifndef X100_PRIMITIVES_KERNEL_TEMPLATES_H_
#define X100_PRIMITIVES_KERNEL_TEMPLATES_H_

#include <type_traits>

#include "primitives/primitive_registry.h"

namespace x100 {

/// Reads argument k as column (i-th element) or constant (element 0).
template <typename T, bool Const>
inline const T& Arg(const void* p, int i) {
  const T* t = static_cast<const T*>(p);
  if constexpr (Const) {
    (void)i;
    return t[0];
  } else {
    return t[i];
  }
}

/// Binary map: out[i] = OP(a[i], b[i]). Writes are positional (sparse under
/// selection) so the selection vector stays valid downstream.
template <typename TA, typename TB, typename TO, typename OP, bool AC,
          bool BC>
Status MapBinary(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx*) {
  TO* o = static_cast<TO*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = OP::Apply(Arg<TA, AC>(args[0], i), Arg<TB, BC>(args[1], i));
    }
  } else {
    for (int i = 0; i < n; i++) {
      o[i] = OP::Apply(Arg<TA, AC>(args[0], i), Arg<TB, BC>(args[1], i));
    }
  }
  return Status::OK();
}

/// Unary map: out[i] = OP(a[i]).
template <typename TA, typename TO, typename OP, bool AC>
Status MapUnary(int n, const sel_t* sel, const void* const* args, void* out,
                PrimCtx*) {
  TO* o = static_cast<TO*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) {
      const int i = sel[j];
      o[i] = OP::Apply(Arg<TA, AC>(args[0], i));
    }
  } else {
    for (int i = 0; i < n; i++) {
      o[i] = OP::Apply(Arg<TA, AC>(args[0], i));
    }
  }
  return Status::OK();
}

/// Select: appends indexes of rows where OP holds; returns match count.
template <typename TA, typename TB, typename OP, bool AC, bool BC>
int SelectBinary(int n, const sel_t* sel_in, const void* const* args,
                 sel_t* sel_out) {
  int k = 0;
  if (sel_in) {
    for (int j = 0; j < n; j++) {
      const int i = sel_in[j];
      // Branch-free append: data-dependent branches on selectivity ~50%
      // are mispredict-heavy; X100 select primitives write then advance.
      sel_out[k] = i;
      k += OP::Apply(Arg<TA, AC>(args[0], i), Arg<TB, BC>(args[1], i)) ? 1 : 0;
    }
  } else {
    for (int i = 0; i < n; i++) {
      sel_out[k] = i;
      k += OP::Apply(Arg<TA, AC>(args[0], i), Arg<TB, BC>(args[1], i)) ? 1 : 0;
    }
  }
  return k;
}

// Wrapping integer arithmetic (defined behaviour via unsigned) and plain
// float arithmetic. These are the *unchecked* kernels; the production
// checked variants live in checked_kernels.cc.
template <typename T>
inline T WrapAdd(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
  } else {
    return a + b;
  }
}
template <typename T>
inline T WrapSub(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) - static_cast<U>(b));
  } else {
    return a - b;
  }
}
template <typename T>
inline T WrapMul(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
  } else {
    return a * b;
  }
}

struct AddOp {
  template <typename T>
  static T Apply(T a, T b) { return WrapAdd(a, b); }
};
struct SubOp {
  template <typename T>
  static T Apply(T a, T b) { return WrapSub(a, b); }
};
struct MulOp {
  template <typename T>
  static T Apply(T a, T b) { return WrapMul(a, b); }
};

struct EqOp {
  template <typename T>
  static bool Apply(const T& a, const T& b) { return a == b; }
};
struct NeOp {
  template <typename T>
  static bool Apply(const T& a, const T& b) { return a != b; }
};
struct LtOp {
  template <typename T>
  static bool Apply(const T& a, const T& b) { return a < b; }
};
struct LeOp {
  template <typename T>
  static bool Apply(const T& a, const T& b) { return a <= b; }
};
struct GtOp {
  template <typename T>
  static bool Apply(const T& a, const T& b) { return a > b; }
};
struct GeOp {
  template <typename T>
  static bool Apply(const T& a, const T& b) { return a >= b; }
};

}  // namespace x100

#endif  // X100_PRIMITIVES_KERNEL_TEMPLATES_H_
