// String function kernels — part of the paper's "Many Functions" work item:
// "SQL standard contains a plethora of functions, in particular around
// strings and dates … This resulted in dozens of new functions added to the
// system."
//
// Functions that are pure combinations of others (LEFT, RIGHT, BETWEEN,
// COALESCE, …) are expanded by the rewriter (rewriter/rules.cc); the
// kernels below are the hand-implemented ones.
#include <algorithm>
#include <cctype>

#include "primitives/kernel_templates.h"
#include "primitives/primitive_registry.h"

namespace x100 {

namespace {

PrimitiveRegistry* Reg() { return PrimitiveRegistry::Get(); }

const ArgSig kStrVec{TypeId::kStr, false};
const ArgSig kStrVal{TypeId::kStr, true};
const ArgSig kI32Val{TypeId::kI32, true};
const ArgSig kI32Vec{TypeId::kI32, false};

// ---- case conversion -------------------------------------------------------

template <bool Upper>
Status MapCase(int n, const sel_t* sel, const void* const* args, void* out,
               PrimCtx* ctx) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  StrRef* o = static_cast<StrRef*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    char* dst = ctx->heap->Allocate(a[i].len);
    for (uint32_t k = 0; k < a[i].len; k++) {
      const char c = a[i].data[k];
      dst[k] = Upper ? static_cast<char>(std::toupper(
                           static_cast<unsigned char>(c)))
                     : static_cast<char>(std::tolower(
                           static_cast<unsigned char>(c)));
    }
    o[i] = StrRef(dst, a[i].len);
  }
  return Status::OK();
}

// ---- length ---------------------------------------------------------------

Status MapLength(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx*) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  int32_t* o = static_cast<int32_t*>(out);
  if (sel) {
    for (int j = 0; j < n; j++) o[sel[j]] = static_cast<int32_t>(a[sel[j]].len);
  } else {
    for (int i = 0; i < n; i++) o[i] = static_cast<int32_t>(a[i].len);
  }
  return Status::OK();
}

// ---- substring (1-based SQL semantics) --------------------------------------

// Incorrect function parameters (negative length) are a detected error —
// paper §"Error handling".
template <bool StartConst, bool LenConst>
Status MapSubstr(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx*) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  StrRef* o = static_cast<StrRef*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    const int32_t start = Arg<int32_t, StartConst>(args[1], i);
    const int32_t len = Arg<int32_t, LenConst>(args[2], i);
    if (len < 0) {
      return Status::InvalidArgument("substring: negative length " +
                                     std::to_string(len));
    }
    // SQL: positions before 1 consume length; clamp to the string.
    int64_t begin = static_cast<int64_t>(start) - 1;
    int64_t count = len;
    if (begin < 0) {
      count += begin;
      begin = 0;
    }
    if (begin >= a[i].len || count <= 0) {
      o[i] = StrRef("", 0);
    } else {
      count = std::min<int64_t>(count, a[i].len - begin);
      o[i] = StrRef(a[i].data + begin, static_cast<uint32_t>(count));
    }
  }
  return Status::OK();
}

// ---- concat -----------------------------------------------------------------

template <bool AC, bool BC>
Status MapConcat(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx* ctx) {
  StrRef* o = static_cast<StrRef*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    const StrRef& a = Arg<StrRef, AC>(args[0], i);
    const StrRef& b = Arg<StrRef, BC>(args[1], i);
    char* dst = ctx->heap->Allocate(a.len + b.len);
    std::memcpy(dst, a.data, a.len);
    std::memcpy(dst + a.len, b.data, b.len);
    o[i] = StrRef(dst, a.len + b.len);
  }
  return Status::OK();
}

// ---- trim -------------------------------------------------------------------

enum class TrimMode { kBoth, kLeft, kRight };

template <TrimMode Mode>
Status MapTrim(int n, const sel_t* sel, const void* const* args, void* out,
               PrimCtx*) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  StrRef* o = static_cast<StrRef*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    uint32_t b = 0, e = a[i].len;
    if (Mode != TrimMode::kRight) {
      while (b < e && a[i].data[b] == ' ') b++;
    }
    if (Mode != TrimMode::kLeft) {
      while (e > b && a[i].data[e - 1] == ' ') e--;
    }
    o[i] = StrRef(a[i].data + b, e - b);
  }
  return Status::OK();
}

// ---- LIKE -------------------------------------------------------------------

// Iterative matcher with %-backtracking; '_' matches one char.
bool LikeMatch(const char* s, uint32_t slen, const char* p, uint32_t plen) {
  uint32_t si = 0, pi = 0;
  int64_t star_pi = -1, star_si = 0;
  while (si < slen) {
    if (pi < plen && (p[pi] == '_' || p[pi] == s[si])) {
      si++;
      pi++;
    } else if (pi < plen && p[pi] == '%') {
      star_pi = pi++;
      star_si = si;
    } else if (star_pi >= 0) {
      pi = static_cast<uint32_t>(star_pi) + 1;
      si = static_cast<uint32_t>(++star_si);
    } else {
      return false;
    }
  }
  while (pi < plen && p[pi] == '%') pi++;
  return pi == plen;
}

template <bool Negate>
Status MapLike(int n, const sel_t* sel, const void* const* args, void* out,
               PrimCtx*) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  const StrRef pat = static_cast<const StrRef*>(args[1])[0];
  uint8_t* o = static_cast<uint8_t*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    const bool m = LikeMatch(a[i].data, a[i].len, pat.data, pat.len);
    o[i] = static_cast<uint8_t>(Negate ? !m : m);
  }
  return Status::OK();
}

int SelectLike(int n, const sel_t* sel_in, const void* const* args,
               sel_t* sel_out) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  const StrRef pat = static_cast<const StrRef*>(args[1])[0];
  int k = 0;
  for (int j = 0; j < n; j++) {
    const int i = sel_in ? sel_in[j] : j;
    if (LikeMatch(a[i].data, a[i].len, pat.data, pat.len)) sel_out[k++] = i;
  }
  return k;
}

// ---- predicates / search ----------------------------------------------------

struct StartsWithOp {
  static bool Apply(const StrRef& a, const StrRef& b) {
    return a.len >= b.len && std::memcmp(a.data, b.data, b.len) == 0;
  }
};
struct EndsWithOp {
  static bool Apply(const StrRef& a, const StrRef& b) {
    return a.len >= b.len &&
           std::memcmp(a.data + a.len - b.len, b.data, b.len) == 0;
  }
};
struct ContainsOp {
  static bool Apply(const StrRef& a, const StrRef& b) {
    if (b.len == 0) return true;
    if (a.len < b.len) return false;
    return a.view().find(b.view()) != std::string_view::npos;
  }
};

// strpos: 1-based position of b in a, 0 when absent (PostgreSQL semantics —
// a "non-standard function users migrating … need" per the paper).
template <bool BC>
Status MapStrpos(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx*) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  int32_t* o = static_cast<int32_t*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    const StrRef& b = Arg<StrRef, BC>(args[1], i);
    const size_t pos = a[i].view().find(b.view());
    o[i] = pos == std::string_view::npos ? 0 : static_cast<int32_t>(pos) + 1;
  }
  return Status::OK();
}

// repeat(s, k): detected error on negative k.
Status MapRepeat(int n, const sel_t* sel, const void* const* args, void* out,
                 PrimCtx* ctx) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  const int32_t k = static_cast<const int32_t*>(args[1])[0];
  if (k < 0) {
    return Status::InvalidArgument("repeat: negative count " +
                                   std::to_string(k));
  }
  StrRef* o = static_cast<StrRef*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    char* dst = ctx->heap->Allocate(static_cast<size_t>(a[i].len) * k);
    for (int r = 0; r < k; r++) {
      std::memcpy(dst + static_cast<size_t>(r) * a[i].len, a[i].data,
                  a[i].len);
    }
    o[i] = StrRef(dst, a[i].len * static_cast<uint32_t>(k));
  }
  return Status::OK();
}

// reverse(s).
Status MapReverse(int n, const sel_t* sel, const void* const* args, void* out,
                  PrimCtx* ctx) {
  const StrRef* a = static_cast<const StrRef*>(args[0]);
  StrRef* o = static_cast<StrRef*>(out);
  for (int j = 0; j < n; j++) {
    const int i = sel ? sel[j] : j;
    char* dst = ctx->heap->Allocate(a[i].len);
    for (uint32_t k = 0; k < a[i].len; k++) {
      dst[k] = a[i].data[a[i].len - 1 - k];
    }
    o[i] = StrRef(dst, a[i].len);
  }
  return Status::OK();
}

}  // namespace

void RegisterStringKernels() {
  Reg()->RegisterMap("map_upper_str_vec", &MapCase<true>, TypeId::kStr);
  Reg()->RegisterMap("map_lower_str_vec", &MapCase<false>, TypeId::kStr);
  Reg()->RegisterMap("map_length_str_vec", &MapLength, TypeId::kI32);

  Reg()->RegisterMap(
      BuildSignature("map", "substring", {kStrVec, kI32Val, kI32Val}),
      &MapSubstr<true, true>, TypeId::kStr);
  Reg()->RegisterMap(
      BuildSignature("map", "substring", {kStrVec, kI32Vec, kI32Vec}),
      &MapSubstr<false, false>, TypeId::kStr);
  Reg()->RegisterMap(
      BuildSignature("map", "substring", {kStrVec, kI32Vec, kI32Val}),
      &MapSubstr<false, true>, TypeId::kStr);

  Reg()->RegisterMap(BuildSignature("map", "concat", {kStrVec, kStrVec}),
                     &MapConcat<false, false>, TypeId::kStr);
  Reg()->RegisterMap(BuildSignature("map", "concat", {kStrVec, kStrVal}),
                     &MapConcat<false, true>, TypeId::kStr);
  Reg()->RegisterMap(BuildSignature("map", "concat", {kStrVal, kStrVec}),
                     &MapConcat<true, false>, TypeId::kStr);

  Reg()->RegisterMap("map_trim_str_vec", &MapTrim<TrimMode::kBoth>,
                     TypeId::kStr);
  Reg()->RegisterMap("map_ltrim_str_vec", &MapTrim<TrimMode::kLeft>,
                     TypeId::kStr);
  Reg()->RegisterMap("map_rtrim_str_vec", &MapTrim<TrimMode::kRight>,
                     TypeId::kStr);

  Reg()->RegisterMap(BuildSignature("map", "like", {kStrVec, kStrVal}),
                     &MapLike<false>, TypeId::kBool);
  Reg()->RegisterMap(BuildSignature("map", "notlike", {kStrVec, kStrVal}),
                     &MapLike<true>, TypeId::kBool);
  Reg()->RegisterSelect(BuildSignature("select", "like", {kStrVec, kStrVal}),
                        &SelectLike);

  Reg()->RegisterMap(
      BuildSignature("map", "starts_with", {kStrVec, kStrVal}),
      &MapBinary<StrRef, StrRef, uint8_t, StartsWithOp, false, true>,
      TypeId::kBool);
  Reg()->RegisterMap(
      BuildSignature("map", "ends_with", {kStrVec, kStrVal}),
      &MapBinary<StrRef, StrRef, uint8_t, EndsWithOp, false, true>,
      TypeId::kBool);
  Reg()->RegisterMap(
      BuildSignature("map", "contains", {kStrVec, kStrVal}),
      &MapBinary<StrRef, StrRef, uint8_t, ContainsOp, false, true>,
      TypeId::kBool);

  Reg()->RegisterMap(BuildSignature("map", "strpos", {kStrVec, kStrVal}),
                     &MapStrpos<true>, TypeId::kI32);
  Reg()->RegisterMap(BuildSignature("map", "strpos", {kStrVec, kStrVec}),
                     &MapStrpos<false>, TypeId::kI32);
  Reg()->RegisterMap(BuildSignature("map", "repeat", {kStrVec, kI32Val}),
                     &MapRepeat, TypeId::kStr);
  Reg()->RegisterMap("map_reverse_str_vec", &MapReverse, TypeId::kStr);
}

}  // namespace x100
