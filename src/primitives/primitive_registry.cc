#include "primitives/primitive_registry.h"

#include <mutex>
#include <unordered_map>

namespace x100 {

std::string BuildSignature(const std::string& kind, const std::string& op,
                           const std::vector<ArgSig>& args) {
  std::string sig = kind;
  sig += '_';
  sig += op;
  for (const ArgSig& a : args) {
    sig += '_';
    sig += TypeName(a.type);
    sig += a.is_const ? "_val" : "_vec";
  }
  return sig;
}

struct PrimitiveRegistry::Impl {
  std::unordered_map<std::string, MapEntry> maps;
  std::unordered_map<std::string, SelectFn> selects;
};

PrimitiveRegistry* PrimitiveRegistry::Get() {
  static PrimitiveRegistry reg;
  return &reg;
}

PrimitiveRegistry::Impl* PrimitiveRegistry::impl() {
  static Impl impl;
  return &impl;
}

const PrimitiveRegistry::Impl* PrimitiveRegistry::impl() const {
  return const_cast<PrimitiveRegistry*>(this)->impl();
}

void PrimitiveRegistry::RegisterMap(const std::string& sig, MapFn fn,
                                    TypeId out_type) {
  impl()->maps[sig] = MapEntry{fn, out_type};
}

void PrimitiveRegistry::RegisterSelect(const std::string& sig, SelectFn fn) {
  impl()->selects[sig] = fn;
}

MapEntry PrimitiveRegistry::FindMap(const std::string& kind,
                                    const std::string& op,
                                    const std::vector<ArgSig>& args) const {
  const auto& m = impl()->maps;
  auto it = m.find(BuildSignature(kind, op, args));
  return it == m.end() ? MapEntry{} : it->second;
}

SelectFn PrimitiveRegistry::FindSelect(
    const std::string& op, const std::vector<ArgSig>& args) const {
  const auto& m = impl()->selects;
  auto it = m.find(BuildSignature("select", op, args));
  return it == m.end() ? nullptr : it->second;
}

int PrimitiveRegistry::num_map_primitives() const {
  return static_cast<int>(impl()->maps.size());
}

int PrimitiveRegistry::num_select_primitives() const {
  return static_cast<int>(impl()->selects.size());
}

std::vector<std::string> PrimitiveRegistry::ListSignatures() const {
  std::vector<std::string> out;
  out.reserve(impl()->maps.size() + impl()->selects.size());
  for (const auto& [sig, _] : impl()->maps) out.push_back(sig);
  for (const auto& [sig, _] : impl()->selects) out.push_back(sig);
  return out;
}

// Defined in the kernel translation units.
void RegisterMapKernels();
void RegisterSelectKernels();
void RegisterStringKernels();
void RegisterDateKernels();
void RegisterCheckedKernels();

void EnsureKernelsRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterMapKernels();
    RegisterSelectKernels();
    RegisterStringKernels();
    RegisterDateKernels();
    RegisterCheckedKernels();
  });
}

}  // namespace x100
