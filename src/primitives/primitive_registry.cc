#include "primitives/primitive_registry.h"

#include <mutex>
#include <unordered_map>

namespace x100 {

std::string BuildSignature(const std::string& kind, const std::string& op,
                           const std::vector<ArgSig>& args) {
  std::string sig = kind;
  sig += '_';
  sig += op;
  for (const ArgSig& a : args) {
    sig += '_';
    sig += TypeName(a.type);
    sig += a.is_const ? "_val" : "_vec";
  }
  return sig;
}

struct PrimitiveRegistry::Impl {
  std::unordered_map<std::string, MapEntry> maps;
  std::unordered_map<std::string, SelectFn> selects;
  /// SIMD variants, indexed by SimdLevel (slot kScalar stays empty — the
  /// scalar kernel lives in maps/selects).
  std::unordered_map<std::string, MapFn> map_variants[kNumSimdLevels];
  std::unordered_map<std::string, SelectFn> select_variants[kNumSimdLevels];
};

PrimitiveRegistry* PrimitiveRegistry::Get() {
  static PrimitiveRegistry reg;
  return &reg;
}

PrimitiveRegistry::Impl* PrimitiveRegistry::impl() {
  static Impl impl;
  return &impl;
}

const PrimitiveRegistry::Impl* PrimitiveRegistry::impl() const {
  return const_cast<PrimitiveRegistry*>(this)->impl();
}

void PrimitiveRegistry::RegisterMap(const std::string& sig, MapFn fn,
                                    TypeId out_type) {
  impl()->maps[sig] = MapEntry{fn, out_type};
}

void PrimitiveRegistry::RegisterSelect(const std::string& sig, SelectFn fn) {
  impl()->selects[sig] = fn;
}

void PrimitiveRegistry::RegisterMapVariant(const std::string& sig,
                                           SimdLevel level, MapFn fn) {
  if (level == SimdLevel::kScalar) return;
  impl()->map_variants[static_cast<int>(level)][sig] = fn;
}

void PrimitiveRegistry::RegisterSelectVariant(const std::string& sig,
                                              SimdLevel level, SelectFn fn) {
  if (level == SimdLevel::kScalar) return;
  impl()->select_variants[static_cast<int>(level)][sig] = fn;
}

MapEntry PrimitiveRegistry::FindMap(const std::string& kind,
                                    const std::string& op,
                                    const std::vector<ArgSig>& args,
                                    SimdLevel level) const {
  const std::string sig = BuildSignature(kind, op, args);
  const auto& m = impl()->maps;
  auto it = m.find(sig);
  if (it == m.end()) return MapEntry{};
  MapEntry entry = it->second;
  if (level != SimdLevel::kScalar) {
    const auto& vm = impl()->map_variants[static_cast<int>(level)];
    auto vit = vm.find(sig);
    if (vit != vm.end()) {
      entry.fn = vit->second;
      entry.level = level;
    }
  }
  return entry;
}

SelectFn PrimitiveRegistry::FindSelect(const std::string& op,
                                       const std::vector<ArgSig>& args,
                                       SimdLevel level) const {
  const std::string sig = BuildSignature("select", op, args);
  if (level != SimdLevel::kScalar) {
    const auto& vm = impl()->select_variants[static_cast<int>(level)];
    auto vit = vm.find(sig);
    if (vit != vm.end()) return vit->second;
  }
  const auto& m = impl()->selects;
  auto it = m.find(sig);
  return it == m.end() ? nullptr : it->second;
}

int PrimitiveRegistry::num_map_primitives() const {
  return static_cast<int>(impl()->maps.size());
}

int PrimitiveRegistry::num_select_primitives() const {
  return static_cast<int>(impl()->selects.size());
}

int PrimitiveRegistry::num_simd_variants() const {
  size_t n = 0;
  for (int l = 0; l < kNumSimdLevels; l++) {
    n += impl()->map_variants[l].size();
    n += impl()->select_variants[l].size();
  }
  return static_cast<int>(n);
}

std::vector<std::string> PrimitiveRegistry::ListSignatures() const {
  std::vector<std::string> out;
  out.reserve(impl()->maps.size() + impl()->selects.size());
  for (const auto& [sig, _] : impl()->maps) out.push_back(sig);
  for (const auto& [sig, _] : impl()->selects) out.push_back(sig);
  return out;
}

// Defined in the kernel translation units.
void RegisterMapKernels();
void RegisterSelectKernels();
void RegisterStringKernels();
void RegisterDateKernels();
void RegisterCheckedKernels();
// src/simd/register_simd.cc — registers the variants for every level the
// machine can execute (possibly none).
void RegisterSimdKernels();

void EnsureKernelsRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterMapKernels();
    RegisterSelectKernels();
    RegisterStringKernels();
    RegisterDateKernels();
    RegisterCheckedKernels();
    RegisterSimdKernels();
  });
}

}  // namespace x100
