// Vectorized hashing of key columns for join / group-by hash tables.
#ifndef X100_PRIMITIVES_HASH_KERNELS_H_
#define X100_PRIMITIVES_HASH_KERNELS_H_

#include <cstdint>

#include "common/hash.h"
#include "simd/simd.h"
#include "vector/vector.h"

namespace x100 {

namespace hashk {

template <typename T>
inline uint64_t HashValue(const T& v) {
  if constexpr (std::is_same_v<T, StrRef>) {
    return HashStr(v);
  } else if constexpr (std::is_same_v<T, double>) {
    return HashDouble(v);
  } else {
    return HashInt(static_cast<int64_t>(v));
  }
}

/// hashes[j] = hash(col[row_j]) for live rows; when `combine` is set the
/// new hash is folded into the existing one (multi-column keys).
template <typename T>
void HashColumnT(int n, const sel_t* sel, const T* col, uint64_t* hashes,
                 bool combine) {
  if (combine) {
    for (int j = 0; j < n; j++) {
      const int i = sel ? sel[j] : j;
      hashes[j] = HashCombine(hashes[j], HashValue(col[i]));
    }
  } else {
    for (int j = 0; j < n; j++) {
      const int i = sel ? sel[j] : j;
      hashes[j] = HashValue(col[i]);
    }
  }
}

/// Type-dispatched entry point. `simd` selects the batched AVX2 pipeline
/// for i32/date/i64/f64 columns (bit-identical to the scalar hash — these
/// hashes feed RadixPartitionOf and thus partition/spill routing, so the
/// kernels MUST agree); narrow ints and strings always hash scalar.
void HashColumn(const Vector& v, int n, const sel_t* sel, uint64_t* hashes,
                bool combine, SimdLevel simd = SimdLevel::kScalar);

}  // namespace hashk
}  // namespace x100

#endif  // X100_PRIMITIVES_HASH_KERNELS_H_
