#include "exec/hash_agg.h"

#include <chrono>

#include "common/bitutil.h"
#include "common/hash.h"
#include "common/pod_serde.h"
#include "common/task_scheduler.h"
#include "primitives/hash_kernels.h"

namespace x100 {

namespace {

/// Typed equality of one cell between two row buffers (group merge).
bool CellsEqual(const RowBuffer& a, int col, int64_t ra, const RowBuffer& b,
                int64_t rb) {
  const bool an = a.IsNull(col, ra), bn = b.IsNull(col, rb);
  if (an || bn) return an == bn;
  switch (a.schema().field(col).type) {
    case TypeId::kBool:
      return a.Col<uint8_t>(col)[ra] == b.Col<uint8_t>(col)[rb];
    case TypeId::kI8:
      return a.Col<int8_t>(col)[ra] == b.Col<int8_t>(col)[rb];
    case TypeId::kI16:
      return a.Col<int16_t>(col)[ra] == b.Col<int16_t>(col)[rb];
    case TypeId::kI32:
    case TypeId::kDate:
      return a.Col<int32_t>(col)[ra] == b.Col<int32_t>(col)[rb];
    case TypeId::kI64:
      return a.Col<int64_t>(col)[ra] == b.Col<int64_t>(col)[rb];
    case TypeId::kF64:
      return a.Col<double>(col)[ra] == b.Col<double>(col)[rb];
    case TypeId::kStr:
      return a.Col<StrRef>(col)[ra] == b.Col<StrRef>(col)[rb];
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// GroupTable
// ---------------------------------------------------------------------------

GroupTable::GroupTable(const Schema& key_schema, std::vector<AggKind> kinds,
                       std::vector<TypeId> in_types)
    : kinds_(std::move(kinds)) {
  keys_ = std::make_unique<RowBuffer>(key_schema);
  buckets_.assign(1024, -1);
  bucket_mask_ = buckets_.size() - 1;
  accums_.resize(kinds_.size());
  for (size_t a = 0; a < accums_.size(); a++) {
    accums_[a].in_type = in_types[a];
  }
}

Result<uint32_t> GroupTable::FinishNewGroup(uint64_t hash) {
  const int64_t gid = keys_->rows() - 1;  // key row appended by the caller
  if (gid >= static_cast<int64_t>(UINT32_MAX)) {
    return Status::ResourceExhausted("too many groups");
  }
  key_hashes_.push_back(hash);
  chain_.push_back(buckets_[hash & bucket_mask_]);
  buckets_[hash & bucket_mask_] = gid;
  for (Accum& a : accums_) {
    a.i64.push_back(0);
    a.f64.push_back(0);
    a.count.push_back(0);
  }
  // Rehash when load factor exceeds ~0.7.
  if (keys_->rows() * 10 > static_cast<int64_t>(buckets_.size()) * 7) {
    buckets_.assign(buckets_.size() * 2, -1);
    bucket_mask_ = buckets_.size() - 1;
    for (int64_t r = 0; r < keys_->rows(); r++) {
      const uint64_t slot = key_hashes_[r] & bucket_mask_;
      chain_[r] = buckets_[slot];
      buckets_[slot] = r;
    }
  }
  return static_cast<uint32_t>(gid);
}

Result<uint32_t> GroupTable::FindOrAdd(
    const std::vector<const Vector*>& key_vecs, int row, uint64_t hash) {
  int64_t node = buckets_[hash & bucket_mask_];
  while (node >= 0) {
    if (key_hashes_[node] == hash) {
      bool eq = true;
      for (size_t k = 0; k < key_vecs.size() && eq; k++) {
        const Vector* v = key_vecs[k];
        const bool in_null = v->IsNull(row);
        const bool g_null = keys_->IsNull(static_cast<int>(k), node);
        if (in_null != g_null) {
          eq = false;
        } else if (!in_null) {
          // Typed equality against the stored key.
          switch (v->type()) {
            case TypeId::kBool:
              eq = v->Data<uint8_t>()[row] ==
                   keys_->Col<uint8_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kI8:
              eq = v->Data<int8_t>()[row] ==
                   keys_->Col<int8_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kI16:
              eq = v->Data<int16_t>()[row] ==
                   keys_->Col<int16_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kI32:
            case TypeId::kDate:
              eq = v->Data<int32_t>()[row] ==
                   keys_->Col<int32_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kI64:
              eq = v->Data<int64_t>()[row] ==
                   keys_->Col<int64_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kF64:
              eq = v->Data<double>()[row] ==
                   keys_->Col<double>(static_cast<int>(k))[node];
              break;
            case TypeId::kStr:
              eq = v->Data<StrRef>()[row] ==
                   keys_->Col<StrRef>(static_cast<int>(k))[node];
              break;
          }
        }
      }
      if (eq) return static_cast<uint32_t>(node);
    }
    node = chain_[node];
  }
  keys_->AppendRowFromVectors(key_vecs, row);
  return FinishNewGroup(hash);
}

size_t GroupTable::MemoryBytes() const {
  size_t b = keys_->MemoryBytes();
  b += (buckets_.capacity() + chain_.capacity()) * sizeof(int64_t);
  b += key_hashes_.capacity() * sizeof(uint64_t);
  for (const Accum& a : accums_) {
    b += a.i64.capacity() * sizeof(int64_t) +
         a.f64.capacity() * sizeof(double) +
         a.count.capacity() * sizeof(int64_t);
  }
  return b;
}

void GroupTable::SerializeTo(std::vector<uint8_t>* out) const {
  // [u64 keys blob size][keys RowBuffer][hashes][per accum: i64/f64/count].
  // The open-addressed index is rebuilt on reload — hashes are enough.
  std::vector<uint8_t> keys_blob;
  keys_->SerializeTo(&keys_blob);
  serde::AppendPod<uint64_t>(out, keys_blob.size());
  out->insert(out->end(), keys_blob.begin(), keys_blob.end());
  serde::AppendPodVec(out, key_hashes_);
  for (const Accum& a : accums_) {
    serde::AppendPodVec(out, a.i64);
    serde::AppendPodVec(out, a.f64);
    serde::AppendPodVec(out, a.count);
  }
}

Result<std::unique_ptr<GroupTable>> GroupTable::Deserialize(
    const Schema& key_schema, std::vector<AggKind> kinds,
    std::vector<TypeId> in_types, const uint8_t* data, size_t size) {
  const Status corrupt = Status::IoError("corrupt agg spill chunk");
  serde::Reader in{data, size};
  uint64_t keys_bytes;
  const uint8_t* keys_blob;
  if (!in.TakePod(&keys_bytes) ||
      !in.Take(static_cast<size_t>(keys_bytes), &keys_blob)) {
    return corrupt;
  }
  auto t = std::make_unique<GroupTable>(key_schema, std::move(kinds),
                                        std::move(in_types));
  auto keys = RowBuffer::Deserialize(key_schema, keys_blob,
                                     static_cast<size_t>(keys_bytes));
  X100_RETURN_IF_ERROR(keys.status());
  t->keys_ = std::move(keys).value();
  const size_t n = static_cast<size_t>(t->keys_->rows());
  if (!in.TakePodVec(n, &t->key_hashes_)) return corrupt;
  for (Accum& a : t->accums_) {
    if (!in.TakePodVec(n, &a.i64) || !in.TakePodVec(n, &a.f64) ||
        !in.TakePodVec(n, &a.count)) {
      return corrupt;
    }
  }
  // Rebuild the index so the reloaded table is fully functional (MergeFrom
  // sources only need keys/hashes/accums, but a valid table is cheap).
  t->buckets_.assign(std::max<size_t>(1024, NextPow2(n * 2)), -1);
  t->bucket_mask_ = t->buckets_.size() - 1;
  t->chain_.resize(n);
  for (size_t r = 0; r < n; r++) {
    const uint64_t slot = t->key_hashes_[r] & t->bucket_mask_;
    t->chain_[r] = t->buckets_[slot];
    t->buckets_[slot] = static_cast<int64_t>(r);
  }
  return t;
}

void GroupTable::EnsureGlobalGroup() {
  if (keys_->rows() > 0) return;
  std::vector<const Vector*> no_keys;
  keys_->AppendRowFromVectors(no_keys, 0);
  (void)FinishNewGroup(0);
}

Status GroupTable::MergeFrom(const GroupTable& src) {
  for (int64_t g = 0; g < src.num_groups(); g++) {
    const uint64_t h = src.key_hashes_[g];
    int64_t node = buckets_[h & bucket_mask_];
    while (node >= 0) {
      if (key_hashes_[node] == h) {
        bool eq = true;
        for (int k = 0; k < keys_->schema().num_fields() && eq; k++) {
          eq = CellsEqual(*keys_, k, node, *src.keys_, g);
        }
        if (eq) break;
      }
      node = chain_[node];
    }
    if (node < 0) {
      keys_->AppendRowFromBuffer(*src.keys_, g);
      auto gid = FinishNewGroup(h);
      X100_RETURN_IF_ERROR(gid.status());
      node = *gid;
    }
    for (size_t a = 0; a < accums_.size(); a++) {
      Accum& d = accums_[a];
      const Accum& s = src.accums_[a];
      switch (kinds_[a]) {
        case AggKind::kCount:
          d.count[node] += s.count[g];
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          d.i64[node] += s.i64[g];
          d.f64[node] += s.f64[g];
          d.count[node] += s.count[g];
          break;
        case AggKind::kMin:
        case AggKind::kMax: {
          if (s.count[g] == 0) break;
          const bool take =
              d.count[node] == 0 ||
              (d.in_type == TypeId::kF64
                   ? (kinds_[a] == AggKind::kMin ? s.f64[g] < d.f64[node]
                                                 : s.f64[g] > d.f64[node])
                   : (kinds_[a] == AggKind::kMin ? s.i64[g] < d.i64[node]
                                                 : s.i64[g] > d.i64[node]));
          if (take) {
            d.i64[node] = s.i64[g];
            d.f64[node] = s.f64[g];
          }
          d.count[node] += s.count[g];
          break;
        }
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AggBinding
// ---------------------------------------------------------------------------

Status AggBinding::Bind(const Schema& in,
                        const std::vector<ProjectItem>& group_by,
                        const std::vector<AggItem>& aggs) {
  for (const ProjectItem& g : group_by) {
    ExprPtr bound;
    X100_ASSIGN_OR_RETURN(bound, BindExpr(g.expr, in));
    key_schema.AddField(Field(g.name, bound->type, bound->nullable));
    out_schema.AddField(Field(g.name, bound->type, bound->nullable));
    bound_keys.push_back(std::move(bound));
  }
  for (const AggItem& a : aggs) {
    TypeId in_type = TypeId::kI64;
    if (a.input != nullptr) {
      ExprPtr bound;
      X100_ASSIGN_OR_RETURN(bound, BindExpr(a.input, in));
      if (a.kind != AggKind::kCount && bound->type == TypeId::kStr) {
        return Status::NotImplemented("string aggregates not supported");
      }
      in_type = bound->type;
      bound_aggs.push_back(std::move(bound));
    } else {
      if (a.kind != AggKind::kCount) {
        return Status::InvalidArgument("only COUNT(*) may omit its input");
      }
      bound_aggs.push_back(nullptr);
    }
    TypeId out_type;
    switch (a.kind) {
      case AggKind::kCount: out_type = TypeId::kI64; break;
      case AggKind::kAvg: out_type = TypeId::kF64; break;
      case AggKind::kSum:
        out_type = in_type == TypeId::kF64 ? TypeId::kF64 : TypeId::kI64;
        break;
      default: out_type = in_type; break;
    }
    // Aggregates over empty groups / all-NULL inputs yield NULL (except
    // COUNT), hence nullable.
    out_schema.AddField(Field(a.name, out_type, a.kind != AggKind::kCount));
    kinds.push_back(a.kind);
    in_types.push_back(in_type);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AggWorkerState
// ---------------------------------------------------------------------------

Status AggWorkerState::Prepare(const std::vector<ExprPtr>& bound_keys,
                               const std::vector<ExprPtr>& bound_aggs,
                               const Schema& key_schema,
                               const std::vector<AggItem>& aggs,
                               const std::vector<TypeId>& in_types,
                               int vector_size, int radix_bits,
                               SimdLevel simd) {
  simd_ = simd;
  key_progs_.clear();
  agg_progs_.clear();
  for (const ExprPtr& bound : bound_keys) {
    auto prog = ExprProgram::Compile(bound, vector_size, simd);
    X100_RETURN_IF_ERROR(prog.status());
    key_progs_.push_back(std::move(prog).value());
  }
  for (const ExprPtr& bound : bound_aggs) {
    if (bound == nullptr) {
      agg_progs_.push_back(nullptr);
      continue;
    }
    auto prog = ExprProgram::Compile(bound, vector_size, simd);
    X100_RETURN_IF_ERROR(prog.status());
    agg_progs_.push_back(std::move(prog).value());
  }
  // Keyless aggregation has exactly one global group — nothing to
  // partition; the serial operator also always runs unpartitioned.
  radix_bits_ = bound_keys.empty() || radix_bits < 0 ? 0 : radix_bits;
  kinds_.clear();
  for (const AggItem& a : aggs) kinds_.push_back(a.kind);
  key_schema_ = key_schema;
  in_types_ = in_types;
  tables_.clear();
  for (int p = 0; p < num_partitions(); p++) {
    tables_.push_back(
        std::make_unique<GroupTable>(key_schema, kinds_, in_types));
  }
  spilled_.clear();
  spilled_.resize(num_partitions());
  spill_bytes_ = spill_chunks_ = spill_rows_ = 0;
  reserv_.ReleaseAll();
  gids_.resize(vector_size);
  parts_.assign(vector_size, 0);
  hashes_.resize(vector_size);
  return Status::OK();
}

Status AggWorkerState::EnsureReservation(ExecContext* ctx) {
  reserv_.Init(ctx->memory);
  const auto footprint = [this]() {
    int64_t b = 0;
    for (const auto& t : tables_) {
      b += static_cast<int64_t>(t->MemoryBytes());
    }
    return b;
  };
  // Spill victims largest-first until one pressure event has freed at
  // least kMinSpillBytes: per-partition tables can individually be
  // small, and one tiny spill per batch degrades into micro-spill churn
  // (serialize + write + reload + merge per few KB). Each spilled
  // partition starts over with a fresh table; the barrier merge folds
  // the chunks back via MergeFrom, so a group split across chunks
  // recombines exactly. Freeing nothing when the total spillable state
  // is itself below the floor makes GrowOrSpill force-admit it.
  const auto spill_some = [this, ctx]() -> Result<int64_t> {
    int64_t spillable = 0;
    for (const auto& t : tables_) {
      if (t->num_groups() > 0) {
        spillable += static_cast<int64_t>(t->MemoryBytes());
      }
    }
    if (spillable < kMinSpillBytes) return int64_t{0};
    int64_t freed = 0;
    while (freed < kMinSpillBytes) {
      int victim = -1;
      size_t best = 0;
      for (int p = 0; p < num_partitions(); p++) {
        if (tables_[p]->num_groups() == 0) continue;
        const size_t b = tables_[p]->MemoryBytes();
        if (victim < 0 || b > best) {
          best = b;
          victim = p;
        }
      }
      if (victim < 0) break;
      freed += static_cast<int64_t>(tables_[victim]->MemoryBytes());
      std::vector<uint8_t> blob;
      tables_[victim]->SerializeTo(&blob);
      SpillFile file;
      X100_ASSIGN_OR_RETURN(file, SpillFile::Write(ctx->spill_device, blob));
      spill_bytes_ += file.bytes();
      spill_chunks_++;
      spill_rows_ += tables_[victim]->num_groups();
      spilled_[victim].push_back(std::move(file));
      tables_[victim] =
          std::make_unique<GroupTable>(key_schema_, kinds_, in_types_);
      if (key_progs_.empty()) tables_[victim]->EnsureGlobalGroup();
    }
    return freed;
  };
  return GrowOrSpill(&reserv_, ctx->spill_device != nullptr, footprint,
                     spill_some);
}

Status AggWorkerState::MergeSpilled(int partition, GroupTable* dst,
                                    CancellationToken* cancel) const {
  if (partition >= static_cast<int>(spilled_.size())) return Status::OK();
  for (const SpillFile& file : spilled_[partition]) {
    std::vector<uint8_t> blob;
    X100_ASSIGN_OR_RETURN(blob, file.ReadAll(cancel));
    std::unique_ptr<GroupTable> chunk;
    X100_ASSIGN_OR_RETURN(
        chunk, GroupTable::Deserialize(key_schema_, kinds_, in_types_,
                                       blob.data(), blob.size()));
    X100_RETURN_IF_ERROR(dst->MergeFrom(*chunk));
  }
  return Status::OK();
}

void AggWorkerState::RecordSpillProfile(ExecContext* ctx) const {
  if (spill_chunks_ == 0) return;
  OperatorProfile prof;
  prof.op = "AggSpill";
  prof.rows = spill_rows_;
  prof.spill_bytes = spill_bytes_;
  prof.spills = spill_chunks_;
  ctx->RecordOperator(std::move(prof));
}

void AggWorkerState::ForceChargeTables() {
  int64_t b = 0;
  for (const auto& t : tables_) b += static_cast<int64_t>(t->MemoryBytes());
  reserv_.ForceGrowTo(b);
}

Status AggWorkerState::ConsumeAll(Operator* child, ExecContext* ctx,
                                  const std::vector<AggItem>& aggs) {
  if (key_progs_.empty()) tables_[0]->EnsureGlobalGroup();
  while (true) {
    X100_RETURN_IF_ERROR(ctx->CheckCancel());
    Batch* in;
    X100_ASSIGN_OR_RETURN(in, child->Next());
    if (in == nullptr) break;
    const int n = in->ActiveRows();
    const sel_t* sel = in->sel();

    // 1) Evaluate key expressions, hash them, resolve group ids.
    std::vector<const Vector*> key_vecs;
    for (auto& prog : key_progs_) {
      const Vector* v;
      X100_ASSIGN_OR_RETURN(v, prog->Eval(*in));
      key_vecs.push_back(v);
    }
    if (key_vecs.empty()) {
      std::fill(gids_.begin(), gids_.begin() + n, 0u);
    } else {
      bool first = true;
      for (const Vector* v : key_vecs) {
        hashk::HashColumn(*v, n, sel, hashes_.data(), !first, simd_);
        first = false;
      }
      // Group lookup with a software-prefetch window: all n hashes are
      // already known, so while resolving row j the bucket head of row
      // j + kPrefetchDistance is hinted into cache — the dependent loads
      // of the chain walk overlap instead of serializing on DRAM misses.
      const bool prefetch = simd_ != SimdLevel::kScalar;
      if (prefetch) {
        const int w = n < kPrefetchDistance ? n : kPrefetchDistance;
        for (int j = 0; j < w; j++) {
          tables_[RadixPartitionOf(hashes_[j], radix_bits_)]->PrefetchBucket(
              hashes_[j]);
        }
      }
      for (int j = 0; j < n; j++) {
        if (prefetch && j + kPrefetchDistance < n) {
          const uint64_t ph = hashes_[j + kPrefetchDistance];
          tables_[RadixPartitionOf(ph, radix_bits_)]->PrefetchBucket(ph);
        }
        const int i = sel ? sel[j] : j;
        // Route to the radix partition named by the top hash bits: group
        // ids are partition-local, so each partition merges without ever
        // seeing another partition's keys.
        const uint32_t p = static_cast<uint32_t>(
            RadixPartitionOf(hashes_[j], radix_bits_));
        parts_[j] = p;
        uint32_t gid;
        X100_ASSIGN_OR_RETURN(
            gid, tables_[p]->FindOrAdd(key_vecs, i, hashes_[j]));
        gids_[j] = gid;
      }
    }

    // 2) Fold each aggregate's input vector into the accumulators. With
    // radix partitioning the row's accumulator set lives in its
    // partition's table (parts_[j]); unpartitioned runs keep the single
    // hoisted accumulator.
    // The unpartitioned case (acc0 below) runs the aggr_* update kernels
    // (primitives/agg_kernels.h): keyless vectors take the SIMD fast
    // paths, grouped ones the shared scalar loop. The radix-partitioned
    // case keeps the inline loop — each row's accumulator set lives in a
    // different partition table, which no flat kernel signature covers.
    const uint32_t* gid0 = key_progs_.empty() ? nullptr : gids_.data();
    for (size_t a = 0; a < aggs.size(); a++) {
      GroupTable::Accum* acc0 =
          radix_bits_ == 0 ? &tables_[0]->accum(a) : nullptr;
      const AggItem& item = aggs[a];
      if (item.input == nullptr) {  // COUNT(*)
        if (acc0 != nullptr) {
          agg::UpdateCountStar(n, gid0, acc0->count.data());
        } else {
          for (int j = 0; j < n; j++) {
            tables_[parts_[j]]->accum(a).count[gids_[j]]++;
          }
        }
        continue;
      }
      const Vector* v;
      X100_ASSIGN_OR_RETURN(v, agg_progs_[a]->Eval(*in));
      const uint8_t* nulls = v->has_nulls() ? v->nulls() : nullptr;
      if (acc0 != nullptr) {
        agg::UpdateAccum(item.kind, acc0->in_type, n, sel, gid0, nulls,
                         v->RawData(), acc0->i64.data(), acc0->f64.data(),
                         acc0->count.data(), simd_);
        continue;
      }
      for (int j = 0; j < n; j++) {
        const int i = sel ? sel[j] : j;
        if (nulls != nullptr && nulls[i]) continue;
        GroupTable::Accum& acc = tables_[parts_[j]]->accum(a);
        const uint32_t g = gids_[j];
        double dv = 0;
        int64_t iv = 0;
        if (acc.in_type == TypeId::kF64) {
          dv = v->Data<double>()[i];
        } else if (acc.in_type == TypeId::kI64) {
          iv = v->Data<int64_t>()[i];
        } else if (acc.in_type == TypeId::kI16) {
          iv = v->Data<int16_t>()[i];
        } else if (acc.in_type == TypeId::kI8 ||
                   acc.in_type == TypeId::kBool) {
          iv = v->Data<int8_t>()[i];
        } else {
          iv = v->Data<int32_t>()[i];
        }
        switch (item.kind) {
          case AggKind::kCount:
            break;
          case AggKind::kSum:
          case AggKind::kAvg:
            if (acc.in_type == TypeId::kF64) {
              acc.f64[g] += dv;
            } else {
              acc.i64[g] += iv;
              acc.f64[g] += static_cast<double>(iv);
            }
            break;
          case AggKind::kMin:
            if (acc.count[g] == 0 ||
                (acc.in_type == TypeId::kF64 ? dv < acc.f64[g]
                                             : iv < acc.i64[g])) {
              acc.f64[g] = dv;
              acc.i64[g] = iv;
            }
            break;
          case AggKind::kMax:
            if (acc.count[g] == 0 ||
                (acc.in_type == TypeId::kF64 ? dv > acc.f64[g]
                                             : iv > acc.i64[g])) {
              acc.f64[g] = dv;
              acc.i64[g] = iv;
            }
            break;
        }
        acc.count[g]++;
      }
    }

    // Memory governance, checked once per batch (group ids stay valid
    // within the batch; a spill swaps tables only between batches).
    X100_RETURN_IF_ERROR(EnsureReservation(ctx));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Emit (shared by serial and parallel operators)
// ---------------------------------------------------------------------------

namespace {

Result<Batch*> EmitGroupBatch(GroupTable* t,
                              const std::vector<AggItem>& aggs, int nkeys,
                              int vector_size, int64_t* emit_pos,
                              Batch* out) {
  if (*emit_pos >= t->num_groups()) return nullptr;
  out->Reset();
  const int n = static_cast<int>(
      std::min<int64_t>(vector_size, t->num_groups() - *emit_pos));
  for (int j = 0; j < n; j++) {
    const int64_t g = *emit_pos + j;
    for (int k = 0; k < nkeys; k++) {
      t->keys().GatherCell(k, g, out->column(k), j);
    }
    for (size_t a = 0; a < aggs.size(); a++) {
      Vector* dst = out->column(nkeys + static_cast<int>(a));
      const GroupTable::Accum& acc = t->accum(a);
      const AggItem& item = aggs[a];
      if (item.kind == AggKind::kCount) {
        dst->Data<int64_t>()[j] = acc.count[g];
        continue;
      }
      if (acc.count[g] == 0) {
        dst->SetNull(j);  // SQL: aggregate over no (non-NULL) inputs
        continue;
      }
      switch (item.kind) {
        case AggKind::kSum:
          if (dst->type() == TypeId::kF64) {
            dst->Data<double>()[j] = acc.f64[g];
          } else {
            dst->Data<int64_t>()[j] = acc.i64[g];
          }
          break;
        case AggKind::kAvg:
          dst->Data<double>()[j] =
              acc.f64[g] / static_cast<double>(acc.count[g]);
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          switch (dst->type()) {
            case TypeId::kF64: dst->Data<double>()[j] = acc.f64[g]; break;
            case TypeId::kI64: dst->Data<int64_t>()[j] = acc.i64[g]; break;
            case TypeId::kI32:
            case TypeId::kDate:
              dst->Data<int32_t>()[j] = static_cast<int32_t>(acc.i64[g]);
              break;
            case TypeId::kI16:
              dst->Data<int16_t>()[j] = static_cast<int16_t>(acc.i64[g]);
              break;
            case TypeId::kI8:
            case TypeId::kBool:
              dst->Data<int8_t>()[j] = static_cast<int8_t>(acc.i64[g]);
              break;
            default:
              return Status::Internal("unexpected min/max type");
          }
          break;
        case AggKind::kCount:
          break;
      }
      if (dst->has_nulls()) dst->MutableNulls()[j] = 0;
    }
  }
  *emit_pos += n;
  out->set_rows(n);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashAggOp (serial)
// ---------------------------------------------------------------------------

HashAggOp::HashAggOp(OperatorPtr child, std::vector<ProjectItem> group_by,
                     std::vector<AggItem> aggs)
    : child_(std::move(child)),
      group_items_(std::move(group_by)),
      agg_items_(std::move(aggs)) {
  // Bind at construction so output_schema() precedes Open.
  init_status_ =
      binding_.Bind(child_->output_schema(), group_items_, agg_items_);
}

Status HashAggOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(init_status_);
  X100_RETURN_IF_ERROR(child_->Open(ctx));
  X100_RETURN_IF_ERROR(worker_.Prepare(binding_.bound_keys,
                                       binding_.bound_aggs,
                                       binding_.key_schema, agg_items_,
                                       binding_.in_types,
                                       ctx->vector_size, /*radix_bits=*/0,
                                       ctx->simd));
  out_ = std::make_unique<Batch>(binding_.out_schema, ctx->vector_size);
  return Status::OK();
}

void HashAggOp::CloseImpl() {
  if (child_) child_->Close();
}

Result<Batch*> HashAggOp::NextImpl() {
  if (!consumed_) {
    X100_RETURN_IF_ERROR(worker_.ConsumeAll(child_.get(), ctx_, agg_items_));
    // Out-of-core drain: fold any spilled chunks back into the (single,
    // serial) table before emitting; the reloaded result must be
    // resident, hence the force charge.
    if (worker_.spilled()) {
      worker_.RecordSpillProfile(ctx_);
      X100_RETURN_IF_ERROR(
          worker_.MergeSpilled(0, worker_.table(0), ctx_->cancel));
      worker_.ForceChargeTables();
    }
    consumed_ = true;
  }
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  return EmitGroupBatch(worker_.table(), agg_items_,
                        binding_.key_schema.num_fields(),
                        ctx_->vector_size, &emit_pos_, out_.get());
}

// ---------------------------------------------------------------------------
// ParallelHashAggOp (pipeline sink)
// ---------------------------------------------------------------------------

ParallelHashAggOp::ParallelHashAggOp(std::vector<OperatorPtr> chains,
                                     std::vector<ProjectItem> group_by,
                                     std::vector<AggItem> aggs,
                                     int radix_bits)
    : chains_(std::move(chains)),
      group_items_(std::move(group_by)),
      agg_items_(std::move(aggs)),
      radix_bits_(radix_bits < 0 ? 0 : radix_bits) {
  init_status_ = chains_.empty()
                     ? Status::InvalidArgument(
                           "parallel aggregation needs >= 1 worker chain")
                     : binding_.Bind(chains_[0]->output_schema(),
                                     group_items_, agg_items_);
  // A keyless aggregation has one global group; partitioning it is
  // meaningless (and the workers force bits to 0 anyway).
  if (init_status_.ok() && binding_.bound_keys.empty()) radix_bits_ = 0;
}

Status ParallelHashAggOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(init_status_);
  // Worker chains are NOT opened here: each is opened, drained and closed
  // by its pipeline task so the whole chain runs on one pool thread.
  final_.clear();
  for (int p = 0; p < (1 << radix_bits_); p++) {
    final_.push_back(std::make_unique<GroupTable>(
        binding_.key_schema, binding_.kinds, binding_.in_types));
  }
  out_ = std::make_unique<Batch>(binding_.out_schema, ctx->vector_size);
  return Status::OK();
}

void ParallelHashAggOp::CloseImpl() {
  // Chains were closed by their tasks after ParallelConsume's barrier; a
  // Close before the pipeline ever ran (error in a sibling operator)
  // closes them here on the caller.
  for (OperatorPtr& c : chains_) {
    if (c) c->Close();
  }
}

Status ParallelHashAggOp::ParallelConsume() {
  TaskScheduler* sched =
      ctx_->scheduler != nullptr ? ctx_->scheduler : TaskScheduler::Global();
  const int W = static_cast<int>(chains_.size());
  const int P = 1 << radix_bits_;
  workers_.clear();
  for (int w = 0; w < W; w++) {
    auto ws = std::make_unique<AggWorkerState>();
    X100_RETURN_IF_ERROR(ws->Prepare(binding_.bound_keys,
                                     binding_.bound_aggs,
                                     binding_.key_schema, agg_items_,
                                     binding_.in_types, ctx_->vector_size,
                                     radix_bits_, ctx_->simd));
    workers_.push_back(std::move(ws));
  }

  X100_RETURN_IF_ERROR(RunPipelineTasks(
      sched, ctx_->quota, ctx_->cancel, W,
      [this](int w, TaskGroup& group) -> Status {
        X100_RETURN_IF_ERROR(group.CheckCancel());
        Operator* chain = chains_[w].get();
        Status s = chain->Open(ctx_);
        if (s.ok()) {
          s = workers_[w]->ConsumeAll(chain, ctx_, agg_items_);
        }
        chain->Close();
        workers_[w]->RecordSpillProfile(ctx_);
        return s;
      }));

  // Merge fan-out: one scheduler task per radix partition folds that
  // partition's per-worker tables into the final table — partitions hold
  // disjoint key sets, so the tasks share nothing and the old serial
  // barrier merge parallelizes. Each task records an "AggMerge" profile
  // entry (rows = merged groups) so merge cost and partition skew are
  // visible. A keyless aggregation still emits its single global row on
  // empty input.
  if (binding_.bound_keys.empty()) final_[0]->EnsureGlobalGroup();
  final_mem_.clear();
  final_mem_.resize(P);
  X100_RETURN_IF_ERROR(RunPipelineTasks(
      sched, ctx_->quota, ctx_->cancel, P,
      [this](int p, TaskGroup& group) -> Status {
        X100_RETURN_IF_ERROR(group.CheckCancel());
        const auto t0 = std::chrono::steady_clock::now();
        for (auto& ws : workers_) {
          X100_RETURN_IF_ERROR(final_[p]->MergeFrom(*ws->table(p)));
          // Merge-on-reload: chunks this worker spilled for partition p
          // rejoin the fold here, after the live table (order does not
          // matter — MergeFrom combines by aggregate kind).
          X100_RETURN_IF_ERROR(
              ws->MergeSpilled(p, final_[p].get(), ctx_->cancel));
        }
        // The merged partition must be resident to emit; the drain phase
        // is what spilling bounds. Released when the operator dies.
        final_mem_[p].Init(ctx_->memory);
        final_mem_[p].ForceGrowTo(
            static_cast<int64_t>(final_[p]->MemoryBytes()));
        OperatorProfile prof;
        prof.op = "AggMerge";
        prof.rows = final_[p]->num_groups();
        prof.open_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        ctx_->RecordOperator(std::move(prof));
        return Status::OK();
      }));
  workers_.clear();
  return Status::OK();
}

Result<Batch*> ParallelHashAggOp::NextImpl() {
  if (!consumed_) {
    X100_RETURN_IF_ERROR(ParallelConsume());
    consumed_ = true;
  }
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  // Stream partitions in order; each partition emits exactly like the
  // single-table path.
  while (emit_part_ < static_cast<int>(final_.size())) {
    Batch* b;
    X100_ASSIGN_OR_RETURN(
        b, EmitGroupBatch(final_[emit_part_].get(), agg_items_,
                          binding_.key_schema.num_fields(),
                          ctx_->vector_size, &emit_pos_, out_.get()));
    if (b != nullptr) return b;
    emit_part_++;
    emit_pos_ = 0;
  }
  return nullptr;
}

}  // namespace x100
