#include "exec/hash_agg.h"

#include "common/bitutil.h"
#include "common/hash.h"
#include "primitives/hash_kernels.h"

namespace x100 {

HashAggOp::HashAggOp(OperatorPtr child, std::vector<ProjectItem> group_by,
                     std::vector<AggItem> aggs)
    : child_(std::move(child)),
      group_items_(std::move(group_by)),
      agg_items_(std::move(aggs)) {
  // Bind at construction so output_schema() precedes Open.
  const Schema& in = child_->output_schema();
  for (const ProjectItem& g : group_items_) {
    auto bound = BindExpr(g.expr, in);
    if (!bound.ok()) {
      init_status_ = bound.status();
      return;
    }
    key_schema_.AddField(Field(g.name, (*bound)->type, (*bound)->nullable));
    out_schema_.AddField(Field(g.name, (*bound)->type, (*bound)->nullable));
    bound_keys_.push_back(std::move(bound).value());
  }
  for (const AggItem& a : agg_items_) {
    TypeId in_type = TypeId::kI64;
    if (a.input != nullptr) {
      auto bound = BindExpr(a.input, in);
      if (!bound.ok()) {
        init_status_ = bound.status();
        return;
      }
      if (a.kind != AggKind::kCount && (*bound)->type == TypeId::kStr) {
        init_status_ =
            Status::NotImplemented("string aggregates not supported");
        return;
      }
      in_type = (*bound)->type;
      bound_aggs_.push_back(std::move(bound).value());
    } else {
      if (a.kind != AggKind::kCount) {
        init_status_ =
            Status::InvalidArgument("only COUNT(*) may omit its input");
        return;
      }
      bound_aggs_.push_back(nullptr);
    }
    TypeId out_type;
    switch (a.kind) {
      case AggKind::kCount: out_type = TypeId::kI64; break;
      case AggKind::kAvg: out_type = TypeId::kF64; break;
      case AggKind::kSum:
        out_type = in_type == TypeId::kF64 ? TypeId::kF64 : TypeId::kI64;
        break;
      default: out_type = in_type; break;
    }
    // Aggregates over empty groups / all-NULL inputs yield NULL (except
    // COUNT), hence nullable.
    out_schema_.AddField(
        Field(a.name, out_type, a.kind != AggKind::kCount));
    Accum acc;
    acc.in_type = in_type;
    accums_.push_back(std::move(acc));
  }
}

Status HashAggOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(init_status_);
  X100_RETURN_IF_ERROR(child_->Open(ctx));
  key_progs_.clear();
  agg_progs_.clear();
  for (const ExprPtr& bound : bound_keys_) {
    auto prog = ExprProgram::Compile(bound, ctx->vector_size);
    X100_RETURN_IF_ERROR(prog.status());
    key_progs_.push_back(std::move(prog).value());
  }
  for (const ExprPtr& bound : bound_aggs_) {
    if (bound == nullptr) {
      agg_progs_.push_back(nullptr);
      continue;
    }
    auto prog = ExprProgram::Compile(bound, ctx->vector_size);
    X100_RETURN_IF_ERROR(prog.status());
    agg_progs_.push_back(std::move(prog).value());
  }
  keys_ = std::make_unique<RowBuffer>(key_schema_);
  buckets_.assign(1024, -1);
  bucket_mask_ = buckets_.size() - 1;
  gids_.resize(ctx->vector_size);
  hashes_.resize(ctx->vector_size);
  out_ = std::make_unique<Batch>(out_schema_, ctx->vector_size);
  return Status::OK();
}

void HashAggOp::CloseImpl() {
  if (child_) child_->Close();
}

Result<uint32_t> HashAggOp::GroupIdFor(
    Batch& /*in*/, int row, const std::vector<const Vector*>& key_vecs,
    uint64_t hash) {
  int64_t node = buckets_[hash & bucket_mask_];
  while (node >= 0) {
    if (key_hashes_[node] == hash) {
      bool eq = true;
      for (size_t k = 0; k < key_vecs.size() && eq; k++) {
        const Vector* v = key_vecs[k];
        const bool in_null = v->IsNull(row);
        const bool g_null = keys_->IsNull(static_cast<int>(k), node);
        if (in_null != g_null) {
          eq = false;
        } else if (!in_null) {
          // Typed equality against the stored key.
          switch (v->type()) {
            case TypeId::kBool:
              eq = v->Data<uint8_t>()[row] ==
                   keys_->Col<uint8_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kI8:
              eq = v->Data<int8_t>()[row] ==
                   keys_->Col<int8_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kI16:
              eq = v->Data<int16_t>()[row] ==
                   keys_->Col<int16_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kI32:
            case TypeId::kDate:
              eq = v->Data<int32_t>()[row] ==
                   keys_->Col<int32_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kI64:
              eq = v->Data<int64_t>()[row] ==
                   keys_->Col<int64_t>(static_cast<int>(k))[node];
              break;
            case TypeId::kF64:
              eq = v->Data<double>()[row] ==
                   keys_->Col<double>(static_cast<int>(k))[node];
              break;
            case TypeId::kStr:
              eq = v->Data<StrRef>()[row] ==
                   keys_->Col<StrRef>(static_cast<int>(k))[node];
              break;
          }
        }
      }
      if (eq) return static_cast<uint32_t>(node);
    }
    node = chain_[node];
  }
  // New group: append key row + grow accumulators.
  const int64_t gid = keys_->rows();
  if (gid >= static_cast<int64_t>(UINT32_MAX)) {
    return Status::ResourceExhausted("too many groups");
  }
  keys_->AppendRowFromVectors(key_vecs, row);
  key_hashes_.push_back(hash);
  chain_.push_back(buckets_[hash & bucket_mask_]);
  buckets_[hash & bucket_mask_] = gid;
  for (Accum& a : accums_) {
    a.i64.push_back(0);
    a.f64.push_back(0);
    a.count.push_back(0);
  }
  // Rehash when load factor exceeds ~0.7.
  if (keys_->rows() * 10 > static_cast<int64_t>(buckets_.size()) * 7) {
    buckets_.assign(buckets_.size() * 2, -1);
    bucket_mask_ = buckets_.size() - 1;
    for (int64_t r = 0; r < keys_->rows(); r++) {
      const uint64_t slot = key_hashes_[r] & bucket_mask_;
      chain_[r] = buckets_[slot];
      buckets_[slot] = r;
    }
  }
  return static_cast<uint32_t>(gid);
}

Status HashAggOp::Consume() {
  // Global aggregation: materialize the single group up front so an empty
  // input still yields one output row.
  std::vector<const Vector*> no_keys;
  if (group_items_.empty() && keys_->rows() == 0) {
    keys_->AppendRowFromVectors(no_keys, 0);
    key_hashes_.push_back(0);
    chain_.push_back(-1);
    for (Accum& a : accums_) {
      a.i64.push_back(0);
      a.f64.push_back(0);
      a.count.push_back(0);
    }
  }
  while (true) {
    X100_RETURN_IF_ERROR(ctx_->CheckCancel());
    Batch* in;
    X100_ASSIGN_OR_RETURN(in, child_->Next());
    if (in == nullptr) break;
    const int n = in->ActiveRows();
    const sel_t* sel = in->sel();

    // 1) Evaluate key expressions, hash them, resolve group ids.
    std::vector<const Vector*> key_vecs;
    for (auto& prog : key_progs_) {
      const Vector* v;
      X100_ASSIGN_OR_RETURN(v, prog->Eval(*in));
      key_vecs.push_back(v);
    }
    if (key_vecs.empty()) {
      std::fill(gids_.begin(), gids_.begin() + n, 0u);
    } else {
      bool first = true;
      for (const Vector* v : key_vecs) {
        hashk::HashColumn(*v, n, sel, hashes_.data(), !first);
        first = false;
      }
      for (int j = 0; j < n; j++) {
        const int i = sel ? sel[j] : j;
        uint32_t gid;
        X100_ASSIGN_OR_RETURN(gid,
                              GroupIdFor(*in, i, key_vecs, hashes_[j]));
        gids_[j] = gid;
      }
    }

    // 2) Fold each aggregate's input vector into the accumulators.
    for (size_t a = 0; a < agg_items_.size(); a++) {
      Accum& acc = accums_[a];
      const AggItem& item = agg_items_[a];
      if (item.input == nullptr) {  // COUNT(*)
        for (int j = 0; j < n; j++) acc.count[gids_[j]]++;
        continue;
      }
      const Vector* v;
      X100_ASSIGN_OR_RETURN(v, agg_progs_[a]->Eval(*in));
      const uint8_t* nulls = v->has_nulls() ? v->nulls() : nullptr;
      for (int j = 0; j < n; j++) {
        const int i = sel ? sel[j] : j;
        if (nulls != nullptr && nulls[i]) continue;
        const uint32_t g = gids_[j];
        double dv = 0;
        int64_t iv = 0;
        if (acc.in_type == TypeId::kF64) {
          dv = v->Data<double>()[i];
        } else if (acc.in_type == TypeId::kI64) {
          iv = v->Data<int64_t>()[i];
        } else if (acc.in_type == TypeId::kI16) {
          iv = v->Data<int16_t>()[i];
        } else if (acc.in_type == TypeId::kI8 ||
                   acc.in_type == TypeId::kBool) {
          iv = v->Data<int8_t>()[i];
        } else {
          iv = v->Data<int32_t>()[i];
        }
        switch (item.kind) {
          case AggKind::kCount:
            break;
          case AggKind::kSum:
          case AggKind::kAvg:
            if (acc.in_type == TypeId::kF64) {
              acc.f64[g] += dv;
            } else {
              acc.i64[g] += iv;
              acc.f64[g] += static_cast<double>(iv);
            }
            break;
          case AggKind::kMin:
            if (acc.count[g] == 0 ||
                (acc.in_type == TypeId::kF64 ? dv < acc.f64[g]
                                             : iv < acc.i64[g])) {
              acc.f64[g] = dv;
              acc.i64[g] = iv;
            }
            break;
          case AggKind::kMax:
            if (acc.count[g] == 0 ||
                (acc.in_type == TypeId::kF64 ? dv > acc.f64[g]
                                             : iv > acc.i64[g])) {
              acc.f64[g] = dv;
              acc.i64[g] = iv;
            }
            break;
        }
        acc.count[g]++;
      }
    }
  }
  consumed_ = true;
  return Status::OK();
}

Status HashAggOp::EmitGroups() { return Status::OK(); }

Result<Batch*> HashAggOp::NextImpl() {
  if (!consumed_) X100_RETURN_IF_ERROR(Consume());
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  if (emit_pos_ >= keys_->rows()) return nullptr;
  out_->Reset();
  const int n = static_cast<int>(std::min<int64_t>(
      ctx_->vector_size, keys_->rows() - emit_pos_));
  const int nkeys = key_schema_.num_fields();
  for (int j = 0; j < n; j++) {
    const int64_t g = emit_pos_ + j;
    for (int k = 0; k < nkeys; k++) {
      keys_->GatherCell(k, g, out_->column(k), j);
    }
    for (size_t a = 0; a < agg_items_.size(); a++) {
      Vector* dst = out_->column(nkeys + static_cast<int>(a));
      const Accum& acc = accums_[a];
      const AggItem& item = agg_items_[a];
      if (item.kind == AggKind::kCount) {
        dst->Data<int64_t>()[j] = acc.count[g];
        continue;
      }
      if (acc.count[g] == 0) {
        dst->SetNull(j);  // SQL: aggregate over no (non-NULL) inputs
        continue;
      }
      switch (item.kind) {
        case AggKind::kSum:
          if (dst->type() == TypeId::kF64) {
            dst->Data<double>()[j] = acc.f64[g];
          } else {
            dst->Data<int64_t>()[j] = acc.i64[g];
          }
          break;
        case AggKind::kAvg:
          dst->Data<double>()[j] =
              acc.f64[g] / static_cast<double>(acc.count[g]);
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          switch (dst->type()) {
            case TypeId::kF64: dst->Data<double>()[j] = acc.f64[g]; break;
            case TypeId::kI64: dst->Data<int64_t>()[j] = acc.i64[g]; break;
            case TypeId::kI32:
            case TypeId::kDate:
              dst->Data<int32_t>()[j] = static_cast<int32_t>(acc.i64[g]);
              break;
            case TypeId::kI16:
              dst->Data<int16_t>()[j] = static_cast<int16_t>(acc.i64[g]);
              break;
            case TypeId::kI8:
            case TypeId::kBool:
              dst->Data<int8_t>()[j] = static_cast<int8_t>(acc.i64[g]);
              break;
            default:
              return Status::Internal("unexpected min/max type");
          }
          break;
        case AggKind::kCount:
          break;
      }
      if (dst->has_nulls()) dst->MutableNulls()[j] = 0;
    }
  }
  emit_pos_ += n;
  out_->set_rows(n);
  return out_.get();
}

}  // namespace x100
