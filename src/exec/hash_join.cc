#include "exec/hash_join.h"

#include <atomic>
#include <chrono>

#include "common/bitutil.h"
#include "common/pod_serde.h"
#include "common/task_scheduler.h"
#include "primitives/hash_kernels.h"

namespace x100 {

namespace {
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Spill blob for one join-build partition chunk:
/// [i64 nrows][nrows u64 key hashes][RowBuffer serialization]. Hashes ride
/// along so the reload never re-evaluates key expressions — build and
/// probe stay bit-for-bit agreed on partition assignment and bucket index.
std::vector<uint8_t> SerializeBuildChunk(const RowBuffer& rows,
                                         const std::vector<uint64_t>& hashes) {
  std::vector<uint8_t> blob;
  serde::AppendPod<int64_t>(&blob, rows.rows());
  serde::AppendPodVec(&blob, hashes);
  rows.SerializeTo(&blob);
  return blob;
}

/// Appends a reloaded chunk to `rows_out`/`hashes_out`.
Status AppendBuildChunk(const Schema& schema,
                        const std::vector<uint8_t>& blob, RowBuffer* rows_out,
                        std::vector<uint64_t>* hashes_out) {
  const Status corrupt =
      Status::IoError("corrupt join spill chunk: truncated blob");
  serde::Reader in{blob.data(), blob.size()};
  int64_t n;
  std::vector<uint64_t> hashes;
  if (!in.TakePod(&n) || n < 0 ||
      !in.TakePodVec(static_cast<size_t>(n), &hashes)) {
    return corrupt;
  }
  std::unique_ptr<RowBuffer> rb;
  X100_ASSIGN_OR_RETURN(
      rb, RowBuffer::Deserialize(schema, blob.data() + in.pos,
                                 in.remaining()));
  if (rb->rows() != n) {
    return Status::IoError("corrupt join spill chunk: row count mismatch");
  }
  hashes_out->insert(hashes_out->end(), hashes.begin(), hashes.end());
  rows_out->AppendRows(*rb);
  return Status::OK();
}
}  // namespace

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "inner";
    case JoinType::kLeftOuter: return "leftouter";
    case JoinType::kSemi: return "semi";
    case JoinType::kAnti: return "anti";
    case JoinType::kAntiNullAware: return "anti-nullaware";
  }
  return "?";
}

Schema JoinOutputSchema(const Schema& probe, const Schema& build,
                        JoinType type) {
  Schema out;
  for (const Field& f : probe.fields()) out.AddField(f);
  if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
    for (const Field& f : build.fields()) {
      Field nf = f;
      if (type == JoinType::kLeftOuter) nf.nullable = true;
      out.AddField(nf);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JoinBuildState
// ---------------------------------------------------------------------------

JoinBuildState::JoinBuildState(std::vector<OperatorPtr> chains,
                               std::vector<int> build_keys, int radix_bits)
    : chains_(std::move(chains)),
      build_keys_(std::move(build_keys)),
      radix_bits_(radix_bits < 0 ? 0 : radix_bits) {
  build_schema_ = chains_.front()->output_schema();
}

Status JoinBuildState::Build(ExecContext* ctx) {
  TaskScheduler* sched =
      ctx->scheduler != nullptr ? ctx->scheduler : TaskScheduler::Global();
  const int W = static_cast<int>(chains_.size());
  const int P = num_partitions();

  // Per-worker, per-partition partials: rows are routed by the top hash
  // bits as they are drained, so the merge phase below has no
  // cross-partition (and no cross-worker) data dependencies at all.
  // Partition buffers allocate lazily on first touch — a build whose
  // hashes only reach a few partitions (or a tiny build the planner
  // could not predict) pays nothing for the empty ones.
  struct WorkerPartial {
    std::vector<std::unique_ptr<RowBuffer>> rows;    // one per partition
    std::vector<std::vector<uint64_t>> hashes;       // parallel to rows
    bool saw_null_key = false;
    MemoryReservation reserv;  // tracks this worker's partial footprint
    int64_t spill_bytes = 0, spill_chunks = 0, spill_rows = 0;
  };
  std::vector<WorkerPartial> partials(W);
  spilled_.clear();
  spilled_.resize(P);

  // Phase 1 — drain pipeline: tasks drain the cloned chains (sharing one
  // morsel source underneath), hashing keys vectorized and scattering
  // rows into partition buffers. Rows with a NULL key can never match
  // any probe; they only matter through the has_null_key poison flag, so
  // they are dropped here instead of being stored unreachable.
  // Tagged with `this` so losers of the EnsureBuilt race can help.
  //
  // Memory governance: after every batch the worker grows its
  // reservation to its actual footprint. On failure it spills its
  // largest radix partition (the whole partition-so-far, one blob) and
  // retries; with spilling disabled the kResourceExhausted status fails
  // this task, which cancels the group and unwinds the build.
  X100_RETURN_IF_ERROR(RunPipelineTasks(
      sched, ctx->quota, ctx->cancel, W,
      [this, &partials, ctx, P](int w, TaskGroup& group) -> Status {
        X100_RETURN_IF_ERROR(group.CheckCancel());
        WorkerPartial& part = partials[w];
        part.rows.resize(P);
        part.hashes.resize(P);
        part.reserv.Init(ctx->memory);
        auto footprint = [&part, P]() {
          int64_t b = 0;
          for (int p = 0; p < P; p++) {
            if (part.rows[p] != nullptr) {
              b += static_cast<int64_t>(part.rows[p]->MemoryBytes());
            }
            b += static_cast<int64_t>(part.hashes[p].capacity() *
                                      sizeof(uint64_t));
          }
          return b;
        };
        // Writes the worker's largest non-empty partition to disk and
        // frees it, returning the freed bytes; 0 when nothing (worth the
        // round trip) is left — totals under kMinSpillBytes make
        // GrowOrSpill force-admit the remainder instead of churning
        // through micro-spills.
        auto spill_one = [this, &part, ctx, P]() -> int64_t {
          int victim = -1;
          size_t best = 0;
          size_t spillable = 0;
          for (int p = 0; p < P; p++) {
            if (part.rows[p] == nullptr || part.rows[p]->rows() == 0) {
              continue;
            }
            const size_t b = part.rows[p]->MemoryBytes() +
                             part.hashes[p].capacity() * sizeof(uint64_t);
            spillable += b;
            if (victim < 0 || b > best) {
              best = b;
              victim = p;
            }
          }
          if (victim < 0 ||
              spillable < static_cast<size_t>(kMinSpillBytes)) {
            return 0;
          }
          const std::vector<uint8_t> blob =
              SerializeBuildChunk(*part.rows[victim], part.hashes[victim]);
          SpillFile file = SpillFile::Write(ctx->spill_disk, blob);
          part.spill_bytes += file.bytes();
          part.spill_chunks++;
          part.spill_rows += part.rows[victim]->rows();
          {
            std::lock_guard<std::mutex> lock(spill_mu_);
            spilled_[victim].push_back(std::move(file));
          }
          part.rows[victim].reset();
          std::vector<uint64_t>().swap(part.hashes[victim]);
          return static_cast<int64_t>(best);
        };
        auto ensure = [&]() -> Status {
          return GrowOrSpill(&part.reserv, ctx->spill_disk != nullptr,
                             footprint, spill_one);
        };
        std::vector<uint64_t> hash_scratch(ctx->vector_size);
        Operator* chain = chains_[w].get();
        Status s = chain->Open(ctx);
        while (s.ok()) {
          s = group.CheckCancel();
          if (!s.ok()) break;
          auto b = chain->Next();
          if (!b.ok()) {
            s = b.status();
            break;
          }
          if (*b == nullptr) break;
          const Batch& batch = **b;
          const int n = batch.ActiveRows();
          const sel_t* sel = batch.sel();
          bool first = true;
          for (int c : build_keys_) {
            hashk::HashColumn(*batch.column(c), n, sel,
                              hash_scratch.data(), !first);
            first = false;
          }
          for (int j = 0; j < n; j++) {
            const int i = sel ? sel[j] : j;
            bool null_key = false;
            for (int c : build_keys_) {
              null_key |= batch.column(c)->IsNull(i);
            }
            if (null_key) {
              part.saw_null_key = true;  // poison for NOT IN semantics
              continue;
            }
            const size_t p = PartitionOf(hash_scratch[j]);
            if (part.rows[p] == nullptr) {
              part.rows[p] = std::make_unique<RowBuffer>(build_schema_);
            }
            part.rows[p]->AppendRowFrom(batch, i);
            part.hashes[p].push_back(hash_scratch[j]);
          }
          s = ensure();
        }
        chain->Close();
        if (part.spill_chunks > 0) {
          OperatorProfile prof;
          prof.op = "JoinBuildSpill";
          prof.rows = part.spill_rows;
          prof.spill_bytes = part.spill_bytes;
          prof.spills = part.spill_chunks;
          ctx->RecordOperator(std::move(prof));
        }
        return s;
      },
      /*help_tag=*/this));

  for (const WorkerPartial& p : partials) has_null_key_ |= p.saw_null_key;

  // Phase 2 — merge fan-out: each partition is concatenated and
  // hash-indexed by its own scheduler task; partitions share nothing, so
  // the old single-threaded barrier merge becomes an embarrassingly
  // parallel pipeline. Each task records its own profile entry (timed
  // from here: the chain operators already reported their drain time, so
  // these carry only the merge + index cost — and per-partition entries
  // expose partition skew via the profile's max column). Spilled chunks
  // of this partition are re-read here (Grace-style: partition assignment
  // is a pure function of the key hash, so the reload lands every row
  // exactly where the in-memory path would have). The merged partition
  // is force-charged: it must be resident for the probe phase, and the
  // charge is released when the build state dies with its query.
  partitions_.resize(P);
  return RunPipelineTasks(
      sched, ctx->quota, ctx->cancel, P,
      [this, &partials, ctx, W](int p, TaskGroup& group) -> Status {
        X100_RETURN_IF_ERROR(group.CheckCancel());
        const int64_t t0 = NowNs();
        Partition& part = partitions_[p];
        if (W == 1 && spilled_[p].empty() &&
            partials[0].rows[p] != nullptr) {
          part.rows = std::move(partials[0].rows[p]);
          part.hashes = std::move(partials[0].hashes[p]);
        } else {
          part.rows = std::make_unique<RowBuffer>(build_schema_);
          for (WorkerPartial& wp : partials) {
            if (wp.rows[p] == nullptr) continue;
            part.rows->AppendRows(*wp.rows[p]);
            part.hashes.insert(part.hashes.end(), wp.hashes[p].begin(),
                               wp.hashes[p].end());
          }
          for (const SpillFile& file : spilled_[p]) {
            std::vector<uint8_t> blob;
            X100_ASSIGN_OR_RETURN(blob, file.ReadAll(ctx->cancel));
            X100_RETURN_IF_ERROR(AppendBuildChunk(
                build_schema_, blob, part.rows.get(), &part.hashes));
          }
        }
        const int64_t n = part.rows->rows();
        part.buckets.assign(std::max<uint64_t>(16, NextPow2(n * 2)), -1);
        part.bucket_mask = part.buckets.size() - 1;
        part.next.assign(n, -1);
        for (int64_t r = 0; r < n; r++) {
          const uint64_t slot = part.hashes[r] & part.bucket_mask;
          part.next[r] = part.buckets[slot];
          part.buckets[slot] = r;
        }
        part.mem.Init(ctx->memory);
        part.mem.ForceGrowTo(
            static_cast<int64_t>(part.rows->MemoryBytes()) +
            static_cast<int64_t>((part.buckets.capacity() +
                                  part.next.capacity() +
                                  part.hashes.capacity()) *
                                 sizeof(int64_t)));
        OperatorProfile prof;
        prof.op = "JoinBuildMerge";
        prof.rows = n;
        prof.open_ns = NowNs() - t0;
        ctx->RecordOperator(std::move(prof));
        return Status::OK();
      },
      /*help_tag=*/this);
}

Status JoinBuildState::EnsureBuilt(ExecContext* ctx) {
  // Probes call this once per batch: after a successful build, skip the
  // mutex so concurrent probe clones never serialize on it.
  if (built_ok_.load(std::memory_order_acquire)) return Status::OK();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (state_ == State::kBuilt) return build_status_;
    if (chains_closed_) {
      return Status::Cancelled("join build side already closed");
    }
    if (state_ == State::kBuilding) {
      // Another pipeline worker is building. Stealing an ARBITRARY task
      // from this frame could inline-execute work that depends on a
      // barrier suspended beneath us — an unrecoverable self-deadlock —
      // but tasks tagged with THIS build (its drain chains and its
      // per-partition merge tasks) never wait on this build's own
      // completion, so running them here is safe and turns the waiters
      // into extra build workers: without this, sibling pipeline tasks
      // parked in EnsureBuilt would occupy the whole pool and serialize
      // the merge fan-out onto the builder's thread.
      TaskScheduler* sched = ctx->scheduler != nullptr
                                 ? ctx->scheduler
                                 : TaskScheduler::Global();
      while (state_ != State::kBuilt) {
        lock.unlock();
        if (!sched->RunOneTask(/*tag=*/this)) {
          lock.lock();
          if (state_ != State::kBuilt) {
            built_cv_.wait_for(lock, std::chrono::milliseconds(1));
          }
        } else {
          lock.lock();
        }
      }
      return build_status_;
    }
    state_ = State::kBuilding;
  }
  const Status s = Build(ctx);
  {
    std::lock_guard<std::mutex> lock(mu_);
    build_status_ = s;
    state_ = State::kBuilt;
  }
  if (s.ok()) built_ok_.store(true, std::memory_order_release);
  built_cv_.notify_all();
  return s;
}

void JoinBuildState::CloseChains() {
  std::lock_guard<std::mutex> lock(mu_);
  if (chains_closed_) return;
  if (state_ == State::kBuilding) return;  // build tasks own them right now
  chains_closed_ = true;
  for (OperatorPtr& c : chains_) {
    if (c) c->Close();
  }
}

// ---------------------------------------------------------------------------
// JoinProber
// ---------------------------------------------------------------------------

void JoinProber::Init(const JoinBuildState* state,
                      std::vector<int> probe_keys, JoinType type,
                      const Schema* out_schema) {
  state_ = state;
  probe_keys_ = std::move(probe_keys);
  type_ = type;
  out_schema_ = out_schema;
}

Status JoinProber::Open(ExecContext* ctx) {
  out_ = std::make_unique<Batch>(*out_schema_, ctx->vector_size);
  probe_hashes_.resize(ctx->vector_size);
  probe_batch_ = nullptr;
  probe_pos_ = 0;
  chain_pos_ = -1;
  row_matched_ = false;
  eos_ = false;
  return Status::OK();
}

bool JoinProber::ProbeKeyHasNull(const Batch& probe, int i) const {
  for (int c : probe_keys_) {
    if (probe.column(c)->IsNull(i)) return true;
  }
  return false;
}

bool JoinProber::KeysEqual(const Batch& probe, int probe_i,
                           const RowBuffer& rows, int64_t build_row) const {
  const std::vector<int>& bkeys = state_->build_keys();
  for (size_t k = 0; k < probe_keys_.size(); k++) {
    const Vector* pv = probe.column(probe_keys_[k]);
    const int bc = bkeys[k];
    switch (pv->type()) {
      case TypeId::kBool:
        if (pv->Data<uint8_t>()[probe_i] !=
            rows.Col<uint8_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI8:
        if (pv->Data<int8_t>()[probe_i] !=
            rows.Col<int8_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI16:
        if (pv->Data<int16_t>()[probe_i] !=
            rows.Col<int16_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI32:
      case TypeId::kDate:
        if (pv->Data<int32_t>()[probe_i] !=
            rows.Col<int32_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI64:
        if (pv->Data<int64_t>()[probe_i] !=
            rows.Col<int64_t>(bc)[build_row]) return false;
        break;
      case TypeId::kF64:
        if (pv->Data<double>()[probe_i] !=
            rows.Col<double>(bc)[build_row]) return false;
        break;
      case TypeId::kStr:
        if (pv->Data<StrRef>()[probe_i] !=
            rows.Col<StrRef>(bc)[build_row]) return false;
        break;
    }
  }
  return true;
}

void JoinProber::EmitPair(const Batch& probe, int probe_i,
                          const RowBuffer& build, int64_t build_row,
                          int out_i) {
  const int pcols = probe.num_columns();
  for (int c = 0; c < pcols; c++) {
    const Vector& src = *probe.column(c);
    Vector* dst = out_->column(c);
    dst->CopyFrom(src, probe_i, 1, out_i);
  }
  for (int c = 0; c < build.schema().num_fields(); c++) {
    build.GatherCell(c, build_row, out_->column(pcols + c), out_i);
  }
}

void JoinProber::EmitProbeOnly(const Batch& probe, int probe_i, int out_i,
                               bool null_build_side) {
  const int pcols = probe.num_columns();
  for (int c = 0; c < pcols; c++) {
    out_->column(c)->CopyFrom(*probe.column(c), probe_i, 1, out_i);
  }
  if (null_build_side) {
    for (int c = pcols; c < out_->num_columns(); c++) {
      out_->column(c)->SetNull(out_i);
    }
  }
}

Result<Batch*> JoinProber::Next(Operator* child, ExecContext* ctx) {
  while (true) {
    if (eos_) return nullptr;
    X100_RETURN_IF_ERROR(ctx->CheckCancel());
    out_->Reset();
    int filled = 0;

    while (filled < ctx->vector_size) {
      if (probe_batch_ == nullptr) {
        X100_RETURN_IF_ERROR(ctx->CheckCancel());
        X100_ASSIGN_OR_RETURN(probe_batch_, child->Next());
        if (probe_batch_ == nullptr) {
          eos_ = true;
          break;
        }
        probe_pos_ = 0;
        chain_pos_ = -1;
        row_matched_ = false;
        // Hash all live probe keys for this batch.
        const int n = probe_batch_->ActiveRows();
        const sel_t* sel = probe_batch_->sel();
        bool first = true;
        for (int c : probe_keys_) {
          hashk::HashColumn(*probe_batch_->column(c), n, sel,
                            probe_hashes_.data(), !first);
          first = false;
        }
      }

      const int n = probe_batch_->ActiveRows();
      const sel_t* sel = probe_batch_->sel();
      bool batch_done = true;
      while (probe_pos_ < n) {
        const int i = sel ? sel[probe_pos_] : probe_pos_;
        const bool key_null = ProbeKeyHasNull(*probe_batch_, i);

        if (type_ == JoinType::kSemi || type_ == JoinType::kAnti ||
            type_ == JoinType::kAntiNullAware) {
          bool matched = false;
          if (!key_null) {
            const uint64_t h = probe_hashes_[probe_pos_];
            const JoinBuildState::Partition& part = state_->partition(h);
            int64_t node = part.Head(h);
            while (node >= 0) {
              if (part.hashes[node] == h &&
                  KeysEqual(*probe_batch_, i, *part.rows, node)) {
                matched = true;
                break;
              }
              node = part.next[node];
            }
          }
          bool emit;
          switch (type_) {
            case JoinType::kSemi:
              emit = matched;
              break;
            case JoinType::kAnti:
              // NOT EXISTS: NULL keys never match, so the row survives.
              emit = !matched;
              break;
            case JoinType::kAntiNullAware:
            default:
              // NOT IN: any NULL in the build side or the probe key makes
              // the predicate non-TRUE -> drop.
              emit = !matched && !key_null && !state_->has_null_key();
              break;
          }
          if (emit) {
            EmitProbeOnly(*probe_batch_, i, filled, false);
            filled++;
          }
          probe_pos_++;
          if (filled >= ctx->vector_size) {
            batch_done = probe_pos_ >= n;
            break;
          }
          continue;
        }

        // Inner / left outer: walk (or resume) the chain. The partition
        // is a pure function of the probe hash, so a resumed row lands
        // back in the partition its chain_pos_ refers to.
        const uint64_t h = probe_hashes_[probe_pos_];
        const JoinBuildState::Partition& part = state_->partition(h);
        if (chain_pos_ < 0 && !row_matched_) {
          chain_pos_ = key_null ? -1 : part.Head(h);
        }
        bool overflowed = false;
        while (chain_pos_ >= 0) {
          const int64_t node = chain_pos_;
          chain_pos_ = part.next[node];
          if (part.hashes[node] == h &&
              KeysEqual(*probe_batch_, i, *part.rows, node)) {
            EmitPair(*probe_batch_, i, *part.rows, node, filled);
            filled++;
            row_matched_ = true;
            if (filled >= ctx->vector_size) {
              overflowed = true;
              break;
            }
          }
        }
        if (overflowed) {
          batch_done = false;
          break;
        }
        if (type_ == JoinType::kLeftOuter && !row_matched_) {
          EmitProbeOnly(*probe_batch_, i, filled, true);
          filled++;
        }
        probe_pos_++;
        chain_pos_ = -1;
        row_matched_ = false;
        if (filled >= ctx->vector_size) {
          batch_done = probe_pos_ >= n;
          break;
        }
      }
      if (probe_pos_ >= n && batch_done) probe_batch_ = nullptr;
      if (filled >= ctx->vector_size) break;
    }

    if (filled == 0) {
      if (eos_) return nullptr;
      continue;  // batch produced no output; pull the next one
    }
    out_->set_rows(filled);
    return out_.get();
  }
}

// ---------------------------------------------------------------------------
// HashJoinOp (serial facade)
// ---------------------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr build, OperatorPtr probe,
                       std::vector<int> build_keys,
                       std::vector<int> probe_keys, JoinType type)
    : probe_child_(std::move(probe)), type_(type) {
  std::vector<OperatorPtr> chains;
  chains.push_back(std::move(build));
  state_ = std::make_shared<JoinBuildState>(std::move(chains),
                                            std::move(build_keys));
  // Output schema known at construction (parents need it before Open).
  out_schema_ = JoinOutputSchema(probe_child_->output_schema(),
                                 state_->schema(), type_);
  prober_.Init(state_.get(), std::move(probe_keys), type_, &out_schema_);
}

Status HashJoinOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(probe_child_->Open(ctx));
  return prober_.Open(ctx);
}

void HashJoinOp::CloseImpl() {
  if (probe_child_) probe_child_->Close();
  if (state_) state_->CloseChains();
}

Result<Batch*> HashJoinOp::NextImpl() {
  X100_RETURN_IF_ERROR(state_->EnsureBuilt(ctx_));
  return prober_.Next(probe_child_.get(), ctx_);
}

// ---------------------------------------------------------------------------
// JoinProbeOp (pipeline worker)
// ---------------------------------------------------------------------------

JoinProbeOp::JoinProbeOp(OperatorPtr probe, JoinBuildStatePtr state,
                         std::vector<int> probe_keys, JoinType type)
    : probe_child_(std::move(probe)),
      state_(std::move(state)),
      type_(type) {
  out_schema_ = JoinOutputSchema(probe_child_->output_schema(),
                                 state_->schema(), type_);
  prober_.Init(state_.get(), std::move(probe_keys), type_, &out_schema_);
}

Status JoinProbeOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(probe_child_->Open(ctx));
  return prober_.Open(ctx);
}

void JoinProbeOp::CloseImpl() {
  if (probe_child_) probe_child_->Close();
  if (state_) state_->CloseChains();
}

Result<Batch*> JoinProbeOp::NextImpl() {
  X100_RETURN_IF_ERROR(state_->EnsureBuilt(ctx_));
  return prober_.Next(probe_child_.get(), ctx_);
}

}  // namespace x100
