#include "exec/hash_join.h"

#include "common/bitutil.h"
#include "common/hash.h"
#include "primitives/hash_kernels.h"

namespace x100 {

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "inner";
    case JoinType::kLeftOuter: return "leftouter";
    case JoinType::kSemi: return "semi";
    case JoinType::kAnti: return "anti";
    case JoinType::kAntiNullAware: return "anti-nullaware";
  }
  return "?";
}

HashJoinOp::HashJoinOp(OperatorPtr build, OperatorPtr probe,
                       std::vector<int> build_keys,
                       std::vector<int> probe_keys, JoinType type)
    : build_child_(std::move(build)),
      probe_child_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      type_(type) {
  // Output schema known at construction (parents need it before Open).
  for (const Field& f : probe_child_->output_schema().fields()) {
    out_schema_.AddField(f);
  }
  if (type_ == JoinType::kInner || type_ == JoinType::kLeftOuter) {
    for (const Field& f : build_child_->output_schema().fields()) {
      Field nf = f;
      if (type_ == JoinType::kLeftOuter) nf.nullable = true;
      out_schema_.AddField(nf);
    }
  }
}

Status HashJoinOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(build_child_->Open(ctx));
  X100_RETURN_IF_ERROR(probe_child_->Open(ctx));
  out_ = std::make_unique<Batch>(out_schema_, ctx->vector_size);
  probe_hashes_.resize(ctx->vector_size);
  return Status::OK();
}

void HashJoinOp::CloseImpl() {
  if (build_child_) build_child_->Close();
  if (probe_child_) probe_child_->Close();
  build_rows_.reset();
  buckets_.clear();
  next_.clear();
}

uint64_t HashJoinOp::HashBuildRow(int64_t row) const {
  uint64_t h = 0;
  bool first = true;
  for (int c : build_keys_) {
    const Value v = build_rows_->GetValue(c, row);
    uint64_t hv;
    switch (v.type()) {
      case TypeId::kF64: hv = HashDouble(v.AsF64()); break;
      case TypeId::kStr: hv = HashBytes(v.AsStr().data(), v.AsStr().size());
        break;
      default: hv = HashInt(v.AsI64()); break;
    }
    h = first ? hv : HashCombine(h, hv);
    first = false;
  }
  return h;
}

Status HashJoinOp::BuildSide() {
  build_rows_ = std::make_unique<RowBuffer>(build_child_->output_schema());
  while (true) {
    X100_RETURN_IF_ERROR(ctx_->CheckCancel());
    Batch* b;
    X100_ASSIGN_OR_RETURN(b, build_child_->Next());
    if (b == nullptr) break;
    build_rows_->AppendBatch(*b);
  }
  const int64_t n = build_rows_->rows();
  buckets_.assign(std::max<uint64_t>(16, NextPow2(n * 2)), -1);
  bucket_mask_ = buckets_.size() - 1;
  next_.assign(n, -1);
  build_hashes_.resize(n);
  for (int64_t r = 0; r < n; r++) {
    bool has_null = false;
    for (int c : build_keys_) has_null |= build_rows_->IsNull(c, r);
    if (has_null) {
      build_has_null_key_ = true;  // poison for NOT IN semantics
      continue;                    // NULL keys never match
    }
    const uint64_t h = HashBuildRow(r);
    build_hashes_[r] = h;
    const uint64_t slot = h & bucket_mask_;
    next_[r] = buckets_[slot];
    buckets_[slot] = r;
  }
  built_ = true;
  return Status::OK();
}

bool HashJoinOp::ProbeKeyHasNull(const Batch& probe, int i) const {
  for (int c : probe_keys_) {
    if (probe.column(c)->IsNull(i)) return true;
  }
  return false;
}

bool HashJoinOp::KeysEqual(const Batch& probe, int probe_i,
                           int64_t build_row) const {
  for (size_t k = 0; k < probe_keys_.size(); k++) {
    const Vector* pv = probe.column(probe_keys_[k]);
    const int bc = build_keys_[k];
    switch (pv->type()) {
      case TypeId::kBool:
        if (pv->Data<uint8_t>()[probe_i] !=
            build_rows_->Col<uint8_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI8:
        if (pv->Data<int8_t>()[probe_i] !=
            build_rows_->Col<int8_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI16:
        if (pv->Data<int16_t>()[probe_i] !=
            build_rows_->Col<int16_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI32:
      case TypeId::kDate:
        if (pv->Data<int32_t>()[probe_i] !=
            build_rows_->Col<int32_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI64:
        if (pv->Data<int64_t>()[probe_i] !=
            build_rows_->Col<int64_t>(bc)[build_row]) return false;
        break;
      case TypeId::kF64:
        if (pv->Data<double>()[probe_i] !=
            build_rows_->Col<double>(bc)[build_row]) return false;
        break;
      case TypeId::kStr:
        if (pv->Data<StrRef>()[probe_i] !=
            build_rows_->Col<StrRef>(bc)[build_row]) return false;
        break;
    }
  }
  return true;
}

void HashJoinOp::EmitPair(const Batch& probe, int probe_i, int64_t build_row,
                          int out_i) {
  const int pcols = probe.num_columns();
  for (int c = 0; c < pcols; c++) {
    const Vector& src = *probe.column(c);
    Vector* dst = out_->column(c);
    dst->CopyFrom(src, probe_i, 1, out_i);
  }
  for (int c = 0; c < build_rows_->schema().num_fields(); c++) {
    build_rows_->GatherCell(c, build_row, out_->column(pcols + c), out_i);
  }
}

void HashJoinOp::EmitProbeOnly(const Batch& probe, int probe_i, int out_i,
                               bool null_build_side) {
  const int pcols = probe.num_columns();
  for (int c = 0; c < pcols; c++) {
    out_->column(c)->CopyFrom(*probe.column(c), probe_i, 1, out_i);
  }
  if (null_build_side) {
    for (int c = pcols; c < out_->num_columns(); c++) {
      out_->column(c)->SetNull(out_i);
    }
  }
}

Result<Batch*> HashJoinOp::NextImpl() {
  if (!built_) X100_RETURN_IF_ERROR(BuildSide());
  if (eos_) return nullptr;
  out_->Reset();
  int filled = 0;

  while (filled < ctx_->vector_size) {
    if (probe_batch_ == nullptr) {
      X100_RETURN_IF_ERROR(ctx_->CheckCancel());
      X100_ASSIGN_OR_RETURN(probe_batch_, probe_child_->Next());
      if (probe_batch_ == nullptr) {
        eos_ = true;
        break;
      }
      probe_pos_ = 0;
      chain_pos_ = -1;
      row_matched_ = false;
      // Hash all live probe keys for this batch.
      const int n = probe_batch_->ActiveRows();
      const sel_t* sel = probe_batch_->sel();
      bool first = true;
      for (int c : probe_keys_) {
        hashk::HashColumn(*probe_batch_->column(c), n, sel,
                          probe_hashes_.data(), !first);
        first = false;
      }
    }

    const int n = probe_batch_->ActiveRows();
    const sel_t* sel = probe_batch_->sel();
    bool batch_done = true;
    while (probe_pos_ < n) {
      const int i = sel ? sel[probe_pos_] : probe_pos_;
      const bool key_null = ProbeKeyHasNull(*probe_batch_, i);

      if (type_ == JoinType::kSemi || type_ == JoinType::kAnti ||
          type_ == JoinType::kAntiNullAware) {
        bool matched = false;
        if (!key_null) {
          int64_t node = buckets_[probe_hashes_[probe_pos_] & bucket_mask_];
          while (node >= 0) {
            if (build_hashes_[node] == probe_hashes_[probe_pos_] &&
                KeysEqual(*probe_batch_, i, node)) {
              matched = true;
              break;
            }
            node = next_[node];
          }
        }
        bool emit;
        switch (type_) {
          case JoinType::kSemi:
            emit = matched;
            break;
          case JoinType::kAnti:
            // NOT EXISTS: NULL keys never match, so the row survives.
            emit = !matched;
            break;
          case JoinType::kAntiNullAware:
          default:
            // NOT IN: any NULL in the build side or the probe key makes
            // the predicate non-TRUE -> drop.
            emit = !matched && !key_null && !build_has_null_key_;
            break;
        }
        if (emit) {
          EmitProbeOnly(*probe_batch_, i, filled, false);
          filled++;
        }
        probe_pos_++;
        if (filled >= ctx_->vector_size) {
          batch_done = probe_pos_ >= n;
          break;
        }
        continue;
      }

      // Inner / left outer: walk (or resume) the chain.
      if (chain_pos_ < 0 && !row_matched_) {
        chain_pos_ = key_null
                         ? -1
                         : buckets_[probe_hashes_[probe_pos_] & bucket_mask_];
      }
      bool overflowed = false;
      while (chain_pos_ >= 0) {
        const int64_t node = chain_pos_;
        chain_pos_ = next_[node];
        if (build_hashes_[node] == probe_hashes_[probe_pos_] &&
            KeysEqual(*probe_batch_, i, node)) {
          EmitPair(*probe_batch_, i, node, filled);
          filled++;
          row_matched_ = true;
          if (filled >= ctx_->vector_size) {
            overflowed = true;
            break;
          }
        }
      }
      if (overflowed) {
        batch_done = false;
        break;
      }
      if (type_ == JoinType::kLeftOuter && !row_matched_) {
        EmitProbeOnly(*probe_batch_, i, filled, true);
        filled++;
      }
      probe_pos_++;
      chain_pos_ = -1;
      row_matched_ = false;
      if (filled >= ctx_->vector_size) {
        batch_done = probe_pos_ >= n;
        break;
      }
    }
    if (probe_pos_ >= n && batch_done) probe_batch_ = nullptr;
    if (filled >= ctx_->vector_size) break;
  }

  if (filled == 0) return eos_ ? Result<Batch*>(nullptr) : Next();
  out_->set_rows(filled);
  return out_.get();
}

}  // namespace x100
