#include "exec/hash_join.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/bitutil.h"
#include "common/pod_serde.h"
#include "common/task_scheduler.h"
#include "primitives/hash_kernels.h"
#include "storage/buffer_manager.h"

namespace x100 {

namespace {
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Probe-side spill chunks reload into batches of this many rows at a
/// time, so the pair phase holds one bounded chunk resident — never a
/// whole probe partition.
constexpr int64_t kProbeSpillChunkRows = 4096;

/// Spill blob for one join-build partition chunk:
/// [i64 nrows][nrows u64 key hashes][RowBuffer serialization]. Hashes ride
/// along so the reload never re-evaluates key expressions — build and
/// probe stay bit-for-bit agreed on partition assignment and bucket index.
std::vector<uint8_t> SerializeBuildChunk(const RowBuffer& rows,
                                         const std::vector<uint64_t>& hashes) {
  std::vector<uint8_t> blob;
  serde::AppendPod<int64_t>(&blob, rows.rows());
  serde::AppendPodVec(&blob, hashes);
  rows.SerializeTo(&blob);
  return blob;
}

/// Writes `rows`+`hashes` as build chunks of at most kProbeSpillChunkRows
/// rows each, appended to `out`. Slicing bounds the transient
/// serialization blob: the merge-time defer sites run at the exact
/// moment the memory budget is exhausted, so a whole-partition blob
/// there would spike the REAL footprint past what the tracker reports.
/// Returns the bytes written; on a failed write the chunks already
/// placed stay in `out` (their blocks are owned and freed with it).
Result<int64_t> WriteBuildChunks(const RowBuffer& rows,
                                 const std::vector<uint64_t>& hashes,
                                 SpillDevice* device,
                                 std::vector<SpillFile>* out,
                                 int64_t* chunks_out) {
  std::vector<int64_t> order(rows.rows());
  for (int64_t i = 0; i < rows.rows(); i++) order[i] = i;
  int64_t bytes = 0;
  for (int64_t begin = 0; begin < rows.rows();
       begin += kProbeSpillChunkRows) {
    const int64_t end =
        std::min<int64_t>(rows.rows(), begin + kProbeSpillChunkRows);
    std::vector<uint8_t> blob;
    serde::AppendPod<int64_t>(&blob, end - begin);
    const auto* h = reinterpret_cast<const uint8_t*>(hashes.data());
    blob.insert(blob.end(), h + begin * sizeof(uint64_t),
                h + end * sizeof(uint64_t));
    rows.SerializeRowsTo(order, begin, end, &blob);
    SpillFile file;
    X100_ASSIGN_OR_RETURN(file, SpillFile::Write(device, blob));
    bytes += file.bytes();
    (*chunks_out)++;
    out->push_back(std::move(file));
  }
  return bytes;
}

/// Appends a reloaded chunk to `rows_out`/`hashes_out`.
Status AppendBuildChunk(const Schema& schema,
                        const std::vector<uint8_t>& blob, RowBuffer* rows_out,
                        std::vector<uint64_t>* hashes_out) {
  const Status corrupt =
      Status::IoError("corrupt join spill chunk: truncated blob");
  serde::Reader in{blob.data(), blob.size()};
  int64_t n;
  std::vector<uint64_t> hashes;
  if (!in.TakePod(&n) || n < 0 ||
      !in.TakePodVec(static_cast<size_t>(n), &hashes)) {
    return corrupt;
  }
  std::unique_ptr<RowBuffer> rb;
  X100_ASSIGN_OR_RETURN(
      rb, RowBuffer::Deserialize(schema, blob.data() + in.pos,
                                 in.remaining()));
  if (rb->rows() != n) {
    return Status::IoError("corrupt join spill chunk: row count mismatch");
  }
  hashes_out->insert(hashes_out->end(), hashes.begin(), hashes.end());
  rows_out->AppendRows(*rb);
  return Status::OK();
}

/// The one bucket-table sizing rule: IndexPartition allocates with it
/// and IndexBytes estimates with it, so merge-time admission and
/// settle-time actuals can never drift apart on the index size.
uint64_t JoinBucketCount(int64_t n) {
  return std::max<uint64_t>(16, NextPow2(n * 2));
}

/// Resident footprint of a chained hash index over n rows (buckets +
/// next chain + kept hashes), for merge-time admission estimates.
int64_t IndexBytes(int64_t n) {
  return (static_cast<int64_t>(JoinBucketCount(n)) + 2 * n) *
         static_cast<int64_t>(sizeof(int64_t));
}
}  // namespace

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "inner";
    case JoinType::kLeftOuter: return "leftouter";
    case JoinType::kSemi: return "semi";
    case JoinType::kAnti: return "anti";
    case JoinType::kAntiNullAware: return "anti-nullaware";
  }
  return "?";
}

Schema JoinOutputSchema(const Schema& probe, const Schema& build,
                        JoinType type) {
  Schema out;
  for (const Field& f : probe.fields()) out.AddField(f);
  if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
    for (const Field& f : build.fields()) {
      Field nf = f;
      if (type == JoinType::kLeftOuter) nf.nullable = true;
      out.AddField(nf);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JoinBuildState
// ---------------------------------------------------------------------------

JoinBuildState::JoinBuildState(std::vector<OperatorPtr> chains,
                               std::vector<int> build_keys, int radix_bits,
                               int64_t estimated_rows, bool allow_radix_resize)
    : chains_(std::move(chains)),
      build_keys_(std::move(build_keys)),
      radix_bits_(radix_bits < 0 ? 0 : radix_bits),
      estimated_rows_(estimated_rows),
      allow_radix_resize_(allow_radix_resize) {
  build_schema_ = chains_.front()->output_schema();
}

/// Resets a partition to the empty-but-probeable deferred shape: no
/// resident rows or charge, and a one-slot empty bucket table so a stray
/// Head() misses instead of faulting. Shared by the two merge-time defer
/// sites and the pair-phase release.
static void ResetPartitionToDeferred(JoinBuildState::Partition* part) {
  part->rows.reset();
  std::vector<uint64_t>().swap(part->hashes);
  std::vector<int64_t>().swap(part->next);
  part->buckets.assign(1, -1);
  part->bucket_mask = 0;
  part->mem.ReleaseAll();
}

void JoinBuildState::IndexPartition(Partition* part) {
  const int64_t n = part->rows->rows();
  part->buckets.assign(JoinBucketCount(n), -1);
  part->bucket_mask = part->buckets.size() - 1;
  part->next.assign(n, -1);
  for (int64_t r = 0; r < n; r++) {
    const uint64_t slot = part->hashes[r] & part->bucket_mask;
    part->next[r] = part->buckets[slot];
    part->buckets[slot] = r;
  }
}

Status JoinBuildState::Build(ExecContext* ctx) {
  TaskScheduler* sched =
      ctx->scheduler != nullptr ? ctx->scheduler : TaskScheduler::Global();
  const int W = static_cast<int>(chains_.size());
  const int P = num_partitions();

  // Per-worker, per-partition partials: rows are routed by the top hash
  // bits as they are drained, so the merge phase below has no
  // cross-partition (and no cross-worker) data dependencies at all.
  // Partition buffers allocate lazily on first touch — a build whose
  // hashes only reach a few partitions (or a tiny build the planner
  // could not predict) pays nothing for the empty ones.
  struct WorkerPartial {
    std::vector<std::unique_ptr<RowBuffer>> rows;    // one per partition
    std::vector<std::vector<uint64_t>> hashes;       // parallel to rows
    bool saw_null_key = false;
    MemoryReservation reserv;  // tracks this worker's partial footprint
    int64_t spill_bytes = 0, spill_chunks = 0, spill_rows = 0;
  };
  std::vector<WorkerPartial> partials(W);
  spilled_.clear();
  spilled_.resize(P);
  spilled_rows_.assign(P, 0);
  spilled_bytes_.assign(P, 0);

  // Phase 1 — drain pipeline: tasks drain the cloned chains (sharing one
  // morsel source underneath), hashing keys vectorized and scattering
  // rows into partition buffers. Rows with a NULL key can never match
  // any probe; they only matter through the has_null_key poison flag, so
  // they are dropped here instead of being stored unreachable.
  // Tagged with `this` so losers of the EnsureBuilt race can help.
  //
  // Memory governance: after every batch the worker grows its
  // reservation to its actual footprint. On failure it spills its
  // largest radix partition (the whole partition-so-far, one blob) and
  // retries; with spilling disabled the kResourceExhausted status fails
  // this task, which cancels the group and unwinds the build.
  X100_RETURN_IF_ERROR(RunPipelineTasks(
      sched, ctx->quota, ctx->cancel, W,
      [this, &partials, ctx, P](int w, TaskGroup& group) -> Status {
        X100_RETURN_IF_ERROR(group.CheckCancel());
        WorkerPartial& part = partials[w];
        part.rows.resize(P);
        part.hashes.resize(P);
        part.reserv.Init(ctx->memory);
        auto footprint = [&part, P]() {
          int64_t b = 0;
          for (int p = 0; p < P; p++) {
            if (part.rows[p] != nullptr) {
              b += static_cast<int64_t>(part.rows[p]->MemoryBytes());
            }
            b += static_cast<int64_t>(part.hashes[p].capacity() *
                                      sizeof(uint64_t));
          }
          return b;
        };
        // Writes the worker's largest non-empty partition to disk and
        // frees it, returning the freed bytes; 0 when nothing (worth the
        // round trip) is left — totals under kMinSpillBytes make
        // GrowOrSpill force-admit the remainder instead of churning
        // through micro-spills. A failed spill WRITE (the device filling
        // up) is a real error and unwinds the pipeline.
        auto spill_one = [this, &part, ctx, P]() -> Result<int64_t> {
          int victim = -1;
          size_t best = 0;
          size_t spillable = 0;
          for (int p = 0; p < P; p++) {
            if (part.rows[p] == nullptr || part.rows[p]->rows() == 0) {
              continue;
            }
            const size_t b = part.rows[p]->MemoryBytes() +
                             part.hashes[p].capacity() * sizeof(uint64_t);
            spillable += b;
            if (victim < 0 || b > best) {
              best = b;
              victim = p;
            }
          }
          if (victim < 0 ||
              spillable < static_cast<size_t>(kMinSpillBytes)) {
            return int64_t{0};
          }
          const int64_t victim_rows = part.rows[victim]->rows();
          const std::vector<uint8_t> blob =
              SerializeBuildChunk(*part.rows[victim], part.hashes[victim]);
          SpillFile file;
          X100_ASSIGN_OR_RETURN(file,
                                SpillFile::Write(ctx->spill_device, blob));
          part.spill_bytes += file.bytes();
          part.spill_chunks++;
          part.spill_rows += victim_rows;
          {
            std::lock_guard<std::mutex> lock(spill_mu_);
            spilled_[victim].push_back(std::move(file));
            spilled_rows_[victim] += victim_rows;
            spilled_bytes_[victim] += static_cast<int64_t>(blob.size());
          }
          part.rows[victim].reset();
          std::vector<uint64_t>().swap(part.hashes[victim]);
          return static_cast<int64_t>(best);
        };
        auto ensure = [&]() -> Status {
          return GrowOrSpill(&part.reserv, ctx->spill_device != nullptr,
                             footprint, spill_one);
        };
        std::vector<uint64_t> hash_scratch(ctx->vector_size);
        Operator* chain = chains_[w].get();
        Status s = chain->Open(ctx);
        while (s.ok()) {
          s = group.CheckCancel();
          if (!s.ok()) break;
          auto b = chain->Next();
          if (!b.ok()) {
            s = b.status();
            break;
          }
          if (*b == nullptr) break;
          const Batch& batch = **b;
          const int n = batch.ActiveRows();
          const sel_t* sel = batch.sel();
          bool first = true;
          for (int c : build_keys_) {
            hashk::HashColumn(*batch.column(c), n, sel,
                              hash_scratch.data(), !first, ctx->simd);
            first = false;
          }
          for (int j = 0; j < n; j++) {
            const int i = sel ? sel[j] : j;
            bool null_key = false;
            for (int c : build_keys_) {
              null_key |= batch.column(c)->IsNull(i);
            }
            if (null_key) {
              part.saw_null_key = true;  // poison for NOT IN semantics
              continue;
            }
            const size_t p = PartitionOf(hash_scratch[j]);
            if (part.rows[p] == nullptr) {
              part.rows[p] = std::make_unique<RowBuffer>(build_schema_);
            }
            part.rows[p]->AppendRowFrom(batch, i);
            part.hashes[p].push_back(hash_scratch[j]);
          }
          s = ensure();
        }
        chain->Close();
        if (part.spill_chunks > 0) {
          OperatorProfile prof;
          prof.op = "JoinBuildSpill";
          prof.rows = part.spill_rows;
          prof.spill_bytes = part.spill_bytes;
          prof.spills = part.spill_chunks;
          ctx->RecordOperator(std::move(prof));
        }
        return s;
      },
      /*help_tag=*/this));

  for (const WorkerPartial& p : partials) has_null_key_ |= p.saw_null_key;

  // Phase 1.5 — dynamic radix re-sizing: the drain just OBSERVED the
  // build cardinality; when it dwarfs the planner's scan-spine estimate
  // (kRadixResizeFactor, e.g. PDT-inserted rows invisible to base-table
  // counts) the tiny-build skip picked too few partitions — one huge
  // merge task, one un-spillable Grace partition. Refinement is
  // hierarchical (a partition under b1 bits splits exactly into
  // 2^(b2-b1) partitions under b2 bits), so one repartition fan-out (one
  // task per OLD partition, touching disjoint new partitions) re-buckets
  // resident partials in memory and splits spilled chunks through one
  // disk round trip.
  int64_t observed = 0;
  for (const WorkerPartial& wp : partials) {
    for (int p = 0; p < P; p++) {
      observed += static_cast<int64_t>(wp.hashes[p].size());
    }
  }
  for (int p = 0; p < P; p++) observed += spilled_rows_[p];
  if (allow_radix_resize_ && estimated_rows_ >= 0 &&
      observed >= kRadixResizeFactor * std::max<int64_t>(estimated_rows_, 1) &&
      RadixBitsForObserved(observed) > radix_bits_) {
    const int new_bits = RadixBitsForObserved(observed);
    const int P2 = 1 << new_bits;
    // Move every worker's old partials aside BEFORE the fan-out: old
    // partition q's buffers live at index q, which aliases NEW partition
    // q (a child of old partition q >> d) — splitting in place would
    // have task 0 writing child slots that still hold task 1's source.
    struct OldPartial {
      std::vector<std::unique_ptr<RowBuffer>> rows;
      std::vector<std::vector<uint64_t>> hashes;
    };
    std::vector<OldPartial> old_partials(W);
    for (int w = 0; w < W; w++) {
      old_partials[w].rows = std::move(partials[w].rows);
      old_partials[w].hashes = std::move(partials[w].hashes);
      partials[w].rows.clear();
      partials[w].rows.resize(P2);
      partials[w].hashes.clear();
      partials[w].hashes.resize(P2);
    }
    std::vector<std::vector<SpillFile>> old_spilled = std::move(spilled_);
    spilled_.clear();
    spilled_.resize(P2);
    spilled_rows_.assign(P2, 0);
    spilled_bytes_.assign(P2, 0);
    const int old_bits = radix_bits_;
    radix_bits_ = new_bits;  // PartitionOf now routes at the new width
    X100_RETURN_IF_ERROR(RunPipelineTasks(
        sched, ctx->quota, ctx->cancel, P,
        [this, &partials, &old_partials, &old_spilled, ctx, observed,
         old_bits, new_bits](int q, TaskGroup& group) -> Status {
          X100_RETURN_IF_ERROR(group.CheckCancel());
          const int64_t t0 = NowNs();
          // Old partition q refines into new partitions
          // [q << d, (q + 1) << d): every task reads only its own old
          // partition and writes only its own child range, so the
          // fan-out needs no locking.
          //
          // The repartition's transient duplication (an old partial
          // alive while its child copies grow; a reloaded chunk plus
          // its split halves) is force-charged as minimum working set —
          // the resize cannot proceed with less, and the tracker must
          // see the real footprint, not just the settled state. The
          // RAII release at task end returns it before the merge phase
          // reserves.
          MemoryReservation transient;
          transient.Init(ctx->memory);
          int64_t transient_hwm = 0;
          auto charge = [&transient, &transient_hwm](int64_t b) {
            if (b > transient_hwm) {
              transient_hwm = b;
              transient.ForceGrowTo(b);
            }
          };
          const int d = new_bits - old_bits;
          int64_t moved = 0;
          for (size_t w = 0; w < old_partials.size(); w++) {
            std::unique_ptr<RowBuffer> src =
                std::move(old_partials[w].rows[q]);
            std::vector<uint64_t> src_hashes;
            src_hashes.swap(old_partials[w].hashes[q]);
            if (src == nullptr) continue;
            charge(static_cast<int64_t>(src->MemoryBytes()) * 2 +
                   static_cast<int64_t>(src_hashes.capacity() *
                                        sizeof(uint64_t)));
            WorkerPartial& wp = partials[w];
            for (int64_t r = 0; r < src->rows(); r++) {
              const size_t child = PartitionOf(src_hashes[r]);
              if (wp.rows[child] == nullptr) {
                wp.rows[child] = std::make_unique<RowBuffer>(build_schema_);
              }
              wp.rows[child]->AppendRowFromBuffer(*src, r);
              wp.hashes[child].push_back(src_hashes[r]);
            }
            moved += src->rows();
          }
          // Spilled chunks of q split through one reload: each child
          // slice is rewritten as its own chunk and the parent chunk is
          // freed (the device recycles its blocks).
          for (SpillFile& chunk : old_spilled[q]) {
            std::vector<uint8_t> blob;
            X100_ASSIGN_OR_RETURN(blob, chunk.ReadAll(ctx->cancel));
            charge(static_cast<int64_t>(blob.size()) * 3);
            RowBuffer rows(build_schema_);
            std::vector<uint64_t> hashes;
            X100_RETURN_IF_ERROR(
                AppendBuildChunk(build_schema_, blob, &rows, &hashes));
            std::vector<std::unique_ptr<RowBuffer>> split(size_t{1} << d);
            std::vector<std::vector<uint64_t>> split_hashes(size_t{1} << d);
            for (int64_t r = 0; r < rows.rows(); r++) {
              const size_t child = PartitionOf(hashes[r]) - (q << d);
              if (split[child] == nullptr) {
                split[child] = std::make_unique<RowBuffer>(build_schema_);
              }
              split[child]->AppendRowFromBuffer(rows, r);
              split_hashes[child].push_back(hashes[r]);
            }
            for (size_t c = 0; c < split.size(); c++) {
              if (split[c] == nullptr) continue;
              const std::vector<uint8_t> child_blob =
                  SerializeBuildChunk(*split[c], split_hashes[c]);
              SpillFile file;
              X100_ASSIGN_OR_RETURN(
                  file, SpillFile::Write(ctx->spill_device, child_blob));
              const size_t child_p = (q << d) + c;
              spilled_rows_[child_p] += split[c]->rows();
              spilled_bytes_[child_p] +=
                  static_cast<int64_t>(child_blob.size());
              spilled_[child_p].push_back(std::move(file));
              moved += split[c]->rows();
            }
            chunk.Free();
          }
          OperatorProfile prof;
          prof.op = "JoinBuildResize";
          prof.rows = moved;
          prof.batches = observed;  // the trigger, for post-mortems
          prof.open_ns = NowNs() - t0;
          ctx->RecordOperator(std::move(prof));
          return Status::OK();
        },
        /*help_tag=*/this));
  }
  const int PM = num_partitions();

  // Phase 2 — merge fan-out: each partition is concatenated and
  // hash-indexed by its own scheduler task; partitions share nothing, so
  // the old single-threaded barrier merge becomes an embarrassingly
  // parallel pipeline. Each task records its own profile entry (timed
  // from here: the chain operators already reported their drain time, so
  // these carry only the merge + index cost — and per-partition entries
  // expose partition skew via the profile's max column).
  //
  // Admission (the Grace probe decision point): the task first RESERVES
  // its estimated resident footprint. A partition that does not fit is
  // DEFERRED — its resident partials are shipped to disk next to its
  // drain-spilled chunks and the partition is joined later, pairwise
  // against the probe rows that hash to it — instead of force-charged,
  // which is what used to make memory_limit a fiction for the probe
  // phase. With spilling disabled the old guarantee stands: the table is
  // force-admitted resident (minimum working set of an in-memory join).
  partitions_.clear();
  partitions_.resize(PM);
  probe_spilled_.clear();
  probe_spilled_.resize(PM);
  return RunPipelineTasks(
      sched, ctx->quota, ctx->cancel, PM,
      [this, &partials, ctx](int p, TaskGroup& group) -> Status {
        X100_RETURN_IF_ERROR(group.CheckCancel());
        const int64_t t0 = NowNs();
        Partition& part = partitions_[p];
        part.mem.Init(ctx->memory);
        int64_t est_rows = spilled_rows_[p];
        int64_t est_bytes = spilled_bytes_[p];
        for (WorkerPartial& wp : partials) {
          if (wp.rows[p] == nullptr) continue;
          est_rows += static_cast<int64_t>(wp.hashes[p].size());
          est_bytes += static_cast<int64_t>(wp.rows[p]->MemoryBytes()) +
                       static_cast<int64_t>(wp.hashes[p].capacity() *
                                            sizeof(uint64_t));
        }
        est_bytes += IndexBytes(est_rows);
        const bool can_defer =
            ctx->spill_device != nullptr && ctx->memory != nullptr;
        auto defer_partials = [this, &partials, ctx, p]() -> Status {
          int64_t bytes = 0, rows = 0, chunks = 0;
          for (WorkerPartial& wp : partials) {
            if (wp.rows[p] == nullptr || wp.rows[p]->rows() == 0) continue;
            int64_t written;
            X100_ASSIGN_OR_RETURN(
                written, WriteBuildChunks(*wp.rows[p], wp.hashes[p],
                                          ctx->spill_device, &spilled_[p],
                                          &chunks));
            bytes += written;
            rows += wp.rows[p]->rows();
            spilled_rows_[p] += wp.rows[p]->rows();
            spilled_bytes_[p] += written;
            wp.rows[p].reset();
            std::vector<uint64_t>().swap(wp.hashes[p]);
          }
          if (chunks > 0) {
            OperatorProfile prof;
            prof.op = "JoinBuildDefer";
            prof.rows = rows;
            prof.spill_bytes = bytes;
            prof.spills = chunks;
            ctx->RecordOperator(std::move(prof));
          }
          return Status::OK();
        };
        if (can_defer && est_rows > 0 && !part.mem.GrowTo(est_bytes).ok()) {
          X100_RETURN_IF_ERROR(defer_partials());
          ResetPartitionToDeferred(&part);
          part.deferred = true;
          any_deferred_.store(true, std::memory_order_relaxed);
          OperatorProfile prof;
          prof.op = "JoinBuildMerge";
          prof.rows = 0;
          prof.open_ns = NowNs() - t0;
          ctx->RecordOperator(std::move(prof));
          return Status::OK();
        }
        const int W = static_cast<int>(partials.size());
        if (W == 1 && spilled_[p].empty() &&
            partials[0].rows[p] != nullptr) {
          part.rows = std::move(partials[0].rows[p]);
          part.hashes = std::move(partials[0].hashes[p]);
        } else {
          part.rows = std::make_unique<RowBuffer>(build_schema_);
          for (WorkerPartial& wp : partials) {
            if (wp.rows[p] == nullptr) continue;
            part.rows->AppendRows(*wp.rows[p]);
            part.hashes.insert(part.hashes.end(), wp.hashes[p].begin(),
                               wp.hashes[p].end());
          }
          for (SpillFile& file : spilled_[p]) {
            std::vector<uint8_t> blob;
            X100_ASSIGN_OR_RETURN(blob, file.ReadAll(ctx->cancel));
            X100_RETURN_IF_ERROR(AppendBuildChunk(
                build_schema_, blob, part.rows.get(), &part.hashes));
            file.Free();  // consumed: the device recycles the blocks now
          }
          spilled_[p].clear();
          spilled_rows_[p] = 0;
          spilled_bytes_[p] = 0;
        }
        const int64_t n = part.rows->rows();
        IndexPartition(&part);
        // Settle the estimate against the materialized footprint. If the
        // actual size no longer fits (allocator slack past the
        // estimate), the partition is serialized back out and deferred —
        // never force-charged — so resident partitions are always WITHIN
        // the budget. Without a spill device the old force-admit stands.
        const int64_t actual =
            static_cast<int64_t>(part.rows->MemoryBytes()) +
            static_cast<int64_t>((part.buckets.capacity() +
                                  part.next.capacity() +
                                  part.hashes.capacity()) *
                                 sizeof(int64_t));
        if (actual <= part.mem.charged()) {
          part.mem.ShrinkTo(actual);
        } else if (!can_defer) {
          part.mem.ForceGrowTo(actual);
        } else if (!part.mem.GrowTo(actual).ok()) {
          int64_t written, chunks = 0;
          X100_ASSIGN_OR_RETURN(
              written, WriteBuildChunks(*part.rows, part.hashes,
                                        ctx->spill_device, &spilled_[p],
                                        &chunks));
          OperatorProfile dprof;
          dprof.op = "JoinBuildDefer";
          dprof.rows = n;
          dprof.spill_bytes = written;
          dprof.spills = chunks;
          ctx->RecordOperator(std::move(dprof));
          spilled_rows_[p] = n;
          spilled_bytes_[p] = written;
          ResetPartitionToDeferred(&part);
          part.deferred = true;
          any_deferred_.store(true, std::memory_order_relaxed);
        }
        OperatorProfile prof;
        prof.op = "JoinBuildMerge";
        prof.rows = part.deferred ? 0 : n;
        prof.open_ns = NowNs() - t0;
        prof.mem_bytes = part.mem.charged();
        ctx->RecordOperator(std::move(prof));
        return Status::OK();
      },
      /*help_tag=*/this);
}

Status JoinBuildState::EnsureBuilt(ExecContext* ctx) {
  // Probes call this once per batch: after a successful build, skip the
  // mutex so concurrent probe clones never serialize on it.
  if (built_ok_.load(std::memory_order_acquire)) return Status::OK();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (state_ == State::kBuilt) return build_status_;
    if (chains_closed_) {
      return Status::Cancelled("join build side already closed");
    }
    if (state_ == State::kBuilding) {
      // Another pipeline worker is building. Stealing an ARBITRARY task
      // from this frame could inline-execute work that depends on a
      // barrier suspended beneath us — an unrecoverable self-deadlock —
      // but tasks tagged with THIS build (its drain chains and its
      // per-partition merge tasks) never wait on this build's own
      // completion, so running them here is safe and turns the waiters
      // into extra build workers: without this, sibling pipeline tasks
      // parked in EnsureBuilt would occupy the whole pool and serialize
      // the merge fan-out onto the builder's thread.
      TaskScheduler* sched = ctx->scheduler != nullptr
                                 ? ctx->scheduler
                                 : TaskScheduler::Global();
      while (state_ != State::kBuilt) {
        lock.unlock();
        if (!sched->RunOneTask(/*tag=*/this)) {
          lock.lock();
          if (state_ != State::kBuilt) {
            built_cv_.wait_for(lock, std::chrono::milliseconds(1));
          }
        } else {
          lock.lock();
        }
      }
      return build_status_;
    }
    state_ = State::kBuilding;
  }
  const Status s = Build(ctx);
  {
    std::lock_guard<std::mutex> lock(mu_);
    build_status_ = s;
    state_ = State::kBuilt;
  }
  if (s.ok()) built_ok_.store(true, std::memory_order_release);
  built_cv_.notify_all();
  return s;
}

void JoinBuildState::CloseChains() {
  std::lock_guard<std::mutex> lock(mu_);
  if (chains_closed_) return;
  if (state_ == State::kBuilding) return;  // build tasks own them right now
  chains_closed_ = true;
  for (OperatorPtr& c : chains_) {
    if (c) c->Close();
  }
}

bool JoinBuildState::FinishProber(
    std::vector<std::vector<SpillFile>> probe_chunks) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (probe_spilled_.size() < probe_chunks.size()) {
    probe_spilled_.resize(probe_chunks.size());
  }
  for (size_t p = 0; p < probe_chunks.size(); p++) {
    for (SpillFile& f : probe_chunks[p]) {
      probe_spilled_[p].push_back(std::move(f));
    }
  }
  probers_finished_++;
  return probers_finished_ ==
         probers_registered_.load(std::memory_order_acquire);
}

std::vector<int> JoinBuildState::DeferredPairList() const {
  std::vector<int> pairs;
  for (size_t p = 0; p < partitions_.size(); p++) {
    if (partitions_[p].deferred && p < probe_spilled_.size() &&
        !probe_spilled_[p].empty()) {
      pairs.push_back(static_cast<int>(p));
    }
  }
  return pairs;
}

Result<int64_t> JoinBuildState::LoadDeferredPartition(
    int p, ExecContext* ctx, std::vector<std::vector<uint8_t>>* preloaded) {
  Partition& part = partitions_[p];
  part.rows = std::make_unique<RowBuffer>(build_schema_);
  part.hashes.clear();
  const bool use_preloaded =
      preloaded != nullptr && preloaded->size() == spilled_[p].size();
  for (size_t i = 0; i < spilled_[p].size(); i++) {
    std::vector<uint8_t> blob;
    if (use_preloaded) {
      blob = std::move((*preloaded)[i]);
    } else {
      X100_ASSIGN_OR_RETURN(blob, spilled_[p][i].ReadAll(ctx->cancel));
    }
    X100_RETURN_IF_ERROR(AppendBuildChunk(build_schema_, blob,
                                          part.rows.get(), &part.hashes));
  }
  IndexPartition(&part);
  const int64_t bytes =
      static_cast<int64_t>(part.rows->MemoryBytes()) +
      static_cast<int64_t>((part.buckets.capacity() + part.next.capacity() +
                            part.hashes.capacity()) *
                           sizeof(int64_t));
  // The pair IS the minimum working set of a deferred partition — it
  // cannot be subdivided further, so it is force-admitted (the
  // documented floor: limit + one pair + SpillForceAdmitSlack).
  part.mem.Init(ctx->memory);
  part.mem.ForceGrowTo(bytes);
  return bytes;
}

void JoinBuildState::ReleaseDeferredPartition(int p) {
  Partition& part = partitions_[p];
  ResetPartitionToDeferred(&part);
  for (SpillFile& f : spilled_[p]) f.Free();
  spilled_[p].clear();
  for (SpillFile& f : probe_spilled_[p]) f.Free();
  probe_spilled_[p].clear();
}

// ---------------------------------------------------------------------------
// JoinProber
// ---------------------------------------------------------------------------

void JoinProber::Init(JoinBuildState* state, std::vector<int> probe_keys,
                      JoinType type, const Schema* probe_schema,
                      const Schema* out_schema) {
  state_ = state;
  probe_keys_ = std::move(probe_keys);
  type_ = type;
  probe_schema_ = probe_schema;
  out_schema_ = out_schema;
}

Status JoinProber::Open(ExecContext* ctx) {
  out_ = std::make_unique<Batch>(*out_schema_, ctx->vector_size);
  probe_hashes_.resize(ctx->vector_size);
  simd_ = ctx->simd;
  prefetch_ = ctx->simd != SimdLevel::kScalar;
  probe_batch_ = nullptr;
  probe_pos_ = 0;
  chain_pos_ = -1;
  row_matched_ = false;
  eos_ = false;
  finished_ = false;
  pair_mode_ = false;
  return Status::OK();
}

void JoinProber::Close(ExecContext* ctx) {
  DropPairPrefetch();
  if (ctx != nullptr && pair_prefetch_issued_ > 0) {
    OperatorProfile prof;
    prof.op = "JoinPairPrefetch";
    prof.rows = pair_prefetch_adopted_;  // pairs whose IO was hidden
    prof.spills = pair_prefetch_issued_;
    ctx->RecordOperator(std::move(prof));
    pair_prefetch_issued_ = pair_prefetch_adopted_ = 0;
  }
  if (ctx != nullptr && probe_spill_chunks_ > 0) {
    OperatorProfile prof;
    prof.op = "JoinProbeSpill";
    prof.rows = probe_spill_rows_;
    prof.spill_bytes = probe_spill_bytes_;
    prof.spills = probe_spill_chunks_;
    ctx->RecordOperator(std::move(prof));
    probe_spill_bytes_ = probe_spill_chunks_ = probe_spill_rows_ = 0;
  }
  defer_rows_.clear();
  defer_chunks_.clear();
  defer_mem_.ReleaseAll();
  pair_mem_.ReleaseAll();
  pair_probe_rows_.reset();
}

bool JoinProber::ProbeKeyHasNull(const Batch& probe, int i) const {
  for (int c : probe_keys_) {
    if (probe.column(c)->IsNull(i)) return true;
  }
  return false;
}

bool JoinProber::KeysEqual(const Batch& probe, int probe_i,
                           const RowBuffer& rows, int64_t build_row) const {
  const std::vector<int>& bkeys = state_->build_keys();
  for (size_t k = 0; k < probe_keys_.size(); k++) {
    const Vector* pv = probe.column(probe_keys_[k]);
    const int bc = bkeys[k];
    switch (pv->type()) {
      case TypeId::kBool:
        if (pv->Data<uint8_t>()[probe_i] !=
            rows.Col<uint8_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI8:
        if (pv->Data<int8_t>()[probe_i] !=
            rows.Col<int8_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI16:
        if (pv->Data<int16_t>()[probe_i] !=
            rows.Col<int16_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI32:
      case TypeId::kDate:
        if (pv->Data<int32_t>()[probe_i] !=
            rows.Col<int32_t>(bc)[build_row]) return false;
        break;
      case TypeId::kI64:
        if (pv->Data<int64_t>()[probe_i] !=
            rows.Col<int64_t>(bc)[build_row]) return false;
        break;
      case TypeId::kF64:
        if (pv->Data<double>()[probe_i] !=
            rows.Col<double>(bc)[build_row]) return false;
        break;
      case TypeId::kStr:
        if (pv->Data<StrRef>()[probe_i] !=
            rows.Col<StrRef>(bc)[build_row]) return false;
        break;
    }
  }
  return true;
}

void JoinProber::EmitPair(const Batch& probe, int probe_i,
                          const RowBuffer& build, int64_t build_row,
                          int out_i) {
  const int pcols = probe.num_columns();
  for (int c = 0; c < pcols; c++) {
    const Vector& src = *probe.column(c);
    Vector* dst = out_->column(c);
    dst->CopyFrom(src, probe_i, 1, out_i);
  }
  for (int c = 0; c < build.schema().num_fields(); c++) {
    build.GatherCell(c, build_row, out_->column(pcols + c), out_i);
  }
}

void JoinProber::EmitProbeOnly(const Batch& probe, int probe_i, int out_i,
                               bool null_build_side) {
  const int pcols = probe.num_columns();
  for (int c = 0; c < pcols; c++) {
    out_->column(c)->CopyFrom(*probe.column(c), probe_i, 1, out_i);
  }
  if (null_build_side) {
    for (int c = pcols; c < out_->num_columns(); c++) {
      out_->column(c)->SetNull(out_i);
    }
  }
}

// --- Grace probe-side spill ------------------------------------------------

Status JoinProber::DeferRow(const Batch& probe, int i, size_t partition) {
  if (defer_rows_.empty()) {
    defer_rows_.resize(state_->num_partitions());
    defer_chunks_.resize(state_->num_partitions());
  }
  if (defer_rows_[partition] == nullptr) {
    defer_rows_[partition] = std::make_unique<RowBuffer>(*probe_schema_);
  }
  defer_rows_[partition]->AppendRowFrom(probe, i);
  return Status::OK();
}

/// Writes partition `victim`'s deferred probe rows as chunks of at most
/// kProbeSpillChunkRows rows each (the pair phase reloads one chunk at a
/// time, so chunk size bounds the pair's probe-side working set) and
/// frees the buffer. Returns the resident bytes freed.
Result<int64_t> JoinProber::SpillDeferredPartition(ExecContext* ctx,
                                                   int victim) {
  RowBuffer& rows = *defer_rows_[victim];
  const int64_t freed = static_cast<int64_t>(rows.MemoryBytes());
  std::vector<int64_t> order(rows.rows());
  for (int64_t i = 0; i < rows.rows(); i++) order[i] = i;
  for (int64_t begin = 0; begin < rows.rows();
       begin += kProbeSpillChunkRows) {
    const int64_t end =
        std::min<int64_t>(rows.rows(), begin + kProbeSpillChunkRows);
    std::vector<uint8_t> blob;
    rows.SerializeRowsTo(order, begin, end, &blob);
    SpillFile file;
    X100_ASSIGN_OR_RETURN(file, SpillFile::Write(ctx->spill_device, blob));
    probe_spill_bytes_ += file.bytes();
    probe_spill_chunks_++;
    defer_chunks_[victim].push_back(std::move(file));
  }
  probe_spill_rows_ += rows.rows();
  defer_rows_[victim].reset();
  return freed;
}

Status JoinProber::EnsureDeferReservation(ExecContext* ctx) {
  if (defer_rows_.empty()) return Status::OK();
  defer_mem_.Init(ctx->memory);
  const auto footprint = [this]() {
    int64_t b = 0;
    for (const auto& rb : defer_rows_) {
      if (rb != nullptr) b += static_cast<int64_t>(rb->MemoryBytes());
    }
    return b;
  };
  // Same policy as the drain: spill the largest deferred buffer, floor
  // kMinSpillBytes so pressure from other operators cannot degrade this
  // into per-row chunks.
  const auto spill_some = [this, ctx]() -> Result<int64_t> {
    int victim = -1;
    size_t best = 0, spillable = 0;
    for (size_t p = 0; p < defer_rows_.size(); p++) {
      if (defer_rows_[p] == nullptr || defer_rows_[p]->rows() == 0) continue;
      const size_t b = defer_rows_[p]->MemoryBytes();
      spillable += b;
      if (victim < 0 || b > best) {
        best = b;
        victim = static_cast<int>(p);
      }
    }
    if (victim < 0 || spillable < static_cast<size_t>(kMinSpillBytes)) {
      return int64_t{0};
    }
    return SpillDeferredPartition(ctx, victim);
  };
  return GrowOrSpill(&defer_mem_, ctx->spill_device != nullptr, footprint,
                     spill_some);
}

Status JoinProber::SpillAllDeferred(ExecContext* ctx) {
  for (size_t p = 0; p < defer_rows_.size(); p++) {
    if (defer_rows_[p] == nullptr || defer_rows_[p]->rows() == 0) continue;
    Result<int64_t> r = SpillDeferredPartition(ctx, static_cast<int>(p));
    X100_RETURN_IF_ERROR(r.status());
  }
  defer_mem_.ReleaseAll();
  return Status::OK();
}

// --- Partition-pair streaming (last finisher) ------------------------------

Status JoinProber::StartPair(ExecContext* ctx) {
  const int p = pair_parts_[pair_idx_];
  pair_t0_ = NowNs();
  pair_rows_ = 0;
  has_adopted_probe_blob_ = false;
  adopted_probe_blob_.clear();
  // Adopt the read-ahead if it targeted this pair. Error parking rule:
  // a background read failure surfaces when a demand read actually needs
  // the bytes — and starting this pair IS that demand, so a real IO
  // error propagates here instead of being silently retried (a corrupt
  // spill chunk must fail the query whether read ahead or on demand).
  // Only a cancelled group falls back to the synchronous loads, whose
  // own cancel checks decide.
  std::vector<std::vector<uint8_t>> blobs;
  std::vector<std::vector<uint8_t>>* preloaded = nullptr;
  if (next_pair_.part == p && next_pair_.tasks != nullptr) {
    const Status s = next_pair_.tasks->Wait();
    if (s.ok()) {
      blobs = std::move(next_pair_.build_blobs);
      preloaded = &blobs;
      if (next_pair_.has_probe_blob) {
        adopted_probe_blob_ = std::move(next_pair_.probe_blob);
        has_adopted_probe_blob_ = true;
      }
      pair_prefetch_adopted_++;
    } else if (!s.IsCancelled()) {
      DropPairPrefetch();
      return s;
    }
  }
  DropPairPrefetch();  // refund the budget: the blobs are demand-owned now
  X100_ASSIGN_OR_RETURN(pair_build_bytes_,
                        state_->LoadDeferredPartition(p, ctx, preloaded));
  pair_mem_.Init(ctx->memory);
  pair_mem_hwm_ = pair_build_bytes_;
  pair_chunk_ = 0;
  pair_row_ = 0;
  pair_probe_rows_.reset();
  if (pair_batch_ == nullptr) {
    pair_batch_ = std::make_unique<Batch>(*probe_schema_, ctx->vector_size);
  }
  // This pair is resident and about to probe — start the next pair's
  // spill reads behind it.
  MaybePrefetchNextPair(ctx);
  return Status::OK();
}

void JoinProber::MaybePrefetchNextPair(ExecContext* ctx) {
  if (pair_idx_ + 1 >= pair_parts_.size()) return;
  if (ctx->buffers == nullptr || ctx->scheduler == nullptr) return;
  if (!ctx->buffers->prefetch_enabled()) return;
  const int p = pair_parts_[pair_idx_ + 1];
  const std::vector<SpillFile>& build = state_->build_chunks(p);
  const std::vector<SpillFile>& probe = state_->probe_chunks(p);
  int64_t bytes = 0;
  for (const SpillFile& f : build) bytes += f.bytes();
  if (!probe.empty()) bytes += probe[0].bytes();
  if (bytes <= 0) return;
  // Ahead-of-demand bytes ride the buffer pool's read-ahead budget, not
  // the query memory limit — during the pair phase the resident pair
  // already sits at the documented memory floor, so a TryReserve there
  // would structurally never succeed. Refused charge = no prefetch.
  if (!ctx->buffers->TryChargePrefetchBytes(bytes)) return;
  next_pair_.part = p;
  next_pair_.charged_bytes = bytes;
  next_pair_.buffers = ctx->buffers;
  next_pair_.build_blobs.assign(build.size(), {});
  next_pair_.has_probe_blob = !probe.empty();
  next_pair_.probe_blob.clear();
  next_pair_.tasks =
      std::make_unique<TaskGroup>(ctx->scheduler, ctx->cancel);
  pair_prefetch_issued_++;
  PairPrefetch* pf = &next_pair_;
  CancellationToken* cancel = ctx->cancel;
  next_pair_.tasks->Spawn([this, pf, p, cancel]() -> Status {
    const std::vector<SpillFile>& bchunks = state_->build_chunks(p);
    for (size_t i = 0; i < bchunks.size(); i++) {
      X100_ASSIGN_OR_RETURN(pf->build_blobs[i], bchunks[i].ReadAll(cancel));
    }
    if (pf->has_probe_blob) {
      X100_ASSIGN_OR_RETURN(pf->probe_blob,
                            state_->probe_chunks(p)[0].ReadAll(cancel));
    }
    return Status::OK();
  });
}

void JoinProber::DropPairPrefetch() {
  if (next_pair_.tasks != nullptr) {
    next_pair_.tasks->Cancel();
    next_pair_.tasks->Wait();
    next_pair_.tasks.reset();
  }
  if (next_pair_.charged_bytes > 0 && next_pair_.buffers != nullptr) {
    next_pair_.buffers->ReleasePrefetchBytes(next_pair_.charged_bytes);
  }
  next_pair_.part = -1;
  next_pair_.charged_bytes = 0;
  next_pair_.buffers = nullptr;
  next_pair_.build_blobs.clear();
  next_pair_.probe_blob.clear();
  next_pair_.has_probe_blob = false;
}

Status JoinProber::FinishPair(ExecContext* ctx) {
  const int p = pair_parts_[pair_idx_];
  OperatorProfile prof;
  prof.op = "JoinProbePair";
  prof.rows = pair_rows_;
  prof.open_ns = NowNs() - pair_t0_;
  prof.mem_bytes = pair_mem_hwm_;
  ctx->RecordOperator(std::move(prof));
  state_->ReleaseDeferredPartition(p);
  pair_mem_.ShrinkTo(0);
  pair_probe_rows_.reset();
  return Status::OK();
}

Result<bool> JoinProber::NextPairChunk(ExecContext* ctx) {
  const int p = pair_parts_[pair_idx_];
  const std::vector<SpillFile>& chunks = state_->probe_chunks(p);
  pair_probe_rows_.reset();
  pair_mem_.ShrinkTo(0);
  if (pair_chunk_ >= chunks.size()) return false;
  std::vector<uint8_t> blob;
  if (pair_chunk_ == 0 && has_adopted_probe_blob_) {
    blob = std::move(adopted_probe_blob_);
    has_adopted_probe_blob_ = false;
    adopted_probe_blob_.clear();
  } else {
    X100_ASSIGN_OR_RETURN(blob, chunks[pair_chunk_].ReadAll(ctx->cancel));
  }
  std::unique_ptr<RowBuffer> rb;
  X100_ASSIGN_OR_RETURN(
      rb, RowBuffer::Deserialize(*probe_schema_, blob.data(), blob.size()));
  pair_probe_rows_ = std::move(rb);
  pair_chunk_++;
  pair_row_ = 0;
  const int64_t b = static_cast<int64_t>(pair_probe_rows_->MemoryBytes());
  pair_mem_.ForceGrowTo(b);  // one bounded chunk: pair working set
  if (pair_build_bytes_ + b > pair_mem_hwm_) {
    pair_mem_hwm_ = pair_build_bytes_ + b;
  }
  return true;
}

Result<Batch*> JoinProber::NextProbeBatch(Operator* child, ExecContext* ctx) {
  if (!pair_mode_) {
    Batch* b;
    X100_ASSIGN_OR_RETURN(b, child->Next());
    if (b != nullptr) {
      // Budget check one batch behind: the rows deferred from the batch
      // just processed are covered before the next one grows the
      // buffers further (the final batch settles in SpillAllDeferred).
      if (state_->any_deferred()) {
        X100_RETURN_IF_ERROR(EnsureDeferReservation(ctx));
      }
      return b;
    }
    // Probe child exhausted. With deferred partitions, this prober's
    // chunks are handed to the shared state; the LAST prober to arrive
    // owns the pair phase — every other prober has already returned
    // end-of-stream to its sink, so the pairs have exactly one owner
    // and stream through this prober's (arbitrary, sinks merge anyway)
    // chain.
    if (finished_ || !state_->any_deferred()) return nullptr;
    finished_ = true;
    X100_RETURN_IF_ERROR(SpillAllDeferred(ctx));
    const bool last = state_->FinishProber(std::move(defer_chunks_));
    defer_chunks_.clear();
    defer_rows_.clear();
    if (!last) return nullptr;
    pair_parts_ = state_->DeferredPairList();
    if (pair_parts_.empty()) return nullptr;
    pair_mode_ = true;
    pair_idx_ = 0;
    X100_RETURN_IF_ERROR(StartPair(ctx));
  }
  while (true) {
    X100_RETURN_IF_ERROR(ctx->CheckCancel());
    if (pair_probe_rows_ != nullptr &&
        pair_row_ < pair_probe_rows_->rows()) {
      const int n = static_cast<int>(std::min<int64_t>(
          ctx->vector_size, pair_probe_rows_->rows() - pair_row_));
      pair_batch_->Reset();
      for (int c = 0; c < probe_schema_->num_fields(); c++) {
        Vector* col = pair_batch_->column(c);
        for (int r = 0; r < n; r++) {
          pair_probe_rows_->GatherCell(c, pair_row_ + r, col, r);
        }
      }
      pair_batch_->set_rows(n);
      pair_row_ += n;
      pair_rows_ += n;
      return pair_batch_.get();
    }
    bool more;
    X100_ASSIGN_OR_RETURN(more, NextPairChunk(ctx));
    if (!more) {
      X100_RETURN_IF_ERROR(FinishPair(ctx));
      pair_idx_++;
      if (pair_idx_ >= pair_parts_.size()) return nullptr;
      X100_RETURN_IF_ERROR(StartPair(ctx));
    }
  }
}

Result<Batch*> JoinProber::Next(Operator* child, ExecContext* ctx) {
  while (true) {
    if (eos_) return nullptr;
    X100_RETURN_IF_ERROR(ctx->CheckCancel());
    out_->Reset();
    int filled = 0;

    while (filled < ctx->vector_size) {
      if (probe_batch_ == nullptr) {
        X100_RETURN_IF_ERROR(ctx->CheckCancel());
        X100_ASSIGN_OR_RETURN(probe_batch_, NextProbeBatch(child, ctx));
        if (probe_batch_ == nullptr) {
          eos_ = true;
          break;
        }
        probe_pos_ = 0;
        chain_pos_ = -1;
        row_matched_ = false;
        // Hash all live probe keys for this batch.
        const int n = probe_batch_->ActiveRows();
        const sel_t* sel = probe_batch_->sel();
        bool first = true;
        for (int c : probe_keys_) {
          hashk::HashColumn(*probe_batch_->column(c), n, sel,
                            probe_hashes_.data(), !first, simd_);
          first = false;
        }
        // Prime the prefetch window: the whole batch's hashes are known,
        // so the first rows' bucket heads can start their trip from DRAM
        // before the probe loop touches them.
        if (prefetch_) {
          const int w = n < kPrefetchDistance ? n : kPrefetchDistance;
          for (int j = 0; j < w; j++) {
            state_->partition(probe_hashes_[j])
                .PrefetchBucket(probe_hashes_[j]);
          }
        }
      }

      const int n = probe_batch_->ActiveRows();
      const sel_t* sel = probe_batch_->sel();
      bool batch_done = true;
      while (probe_pos_ < n) {
        // Keep the in-flight window full: hint the bucket head the loop
        // will need kPrefetchDistance rows from now (resumed rows re-hint
        // harmlessly — prefetch is advisory).
        if (prefetch_ && probe_pos_ + kPrefetchDistance < n) {
          const uint64_t ph = probe_hashes_[probe_pos_ + kPrefetchDistance];
          state_->partition(ph).PrefetchBucket(ph);
        }
        const int i = sel ? sel[probe_pos_] : probe_pos_;
        const bool key_null = ProbeKeyHasNull(*probe_batch_, i);

        // Grace routing: a non-NULL-keyed row whose partition stayed on
        // disk cannot be probed now — it is buffered (and spilled) for
        // the partition-pair phase. NULL-keyed rows never need the
        // table, so every flavor's NULL semantics resolve immediately.
        if (!pair_mode_ && !key_null && state_->any_deferred() &&
            chain_pos_ < 0 && !row_matched_ &&
            state_->partition_deferred(
                state_->PartitionOf(probe_hashes_[probe_pos_]))) {
          X100_RETURN_IF_ERROR(DeferRow(
              *probe_batch_, i,
              state_->PartitionOf(probe_hashes_[probe_pos_])));
          probe_pos_++;
          continue;
        }

        if (type_ == JoinType::kSemi || type_ == JoinType::kAnti ||
            type_ == JoinType::kAntiNullAware) {
          bool matched = false;
          if (!key_null) {
            const uint64_t h = probe_hashes_[probe_pos_];
            const JoinBuildState::Partition& part = state_->partition(h);
            int64_t node = part.Head(h);
            while (node >= 0) {
              if (part.hashes[node] == h &&
                  KeysEqual(*probe_batch_, i, *part.rows, node)) {
                matched = true;
                break;
              }
              node = part.next[node];
            }
          }
          bool emit;
          switch (type_) {
            case JoinType::kSemi:
              emit = matched;
              break;
            case JoinType::kAnti:
              // NOT EXISTS: NULL keys never match, so the row survives.
              emit = !matched;
              break;
            case JoinType::kAntiNullAware:
            default:
              // NOT IN: any NULL in the build side or the probe key makes
              // the predicate non-TRUE -> drop.
              emit = !matched && !key_null && !state_->has_null_key();
              break;
          }
          if (emit) {
            EmitProbeOnly(*probe_batch_, i, filled, false);
            filled++;
          }
          probe_pos_++;
          if (filled >= ctx->vector_size) {
            batch_done = probe_pos_ >= n;
            break;
          }
          continue;
        }

        // Inner / left outer: walk (or resume) the chain. The partition
        // is a pure function of the probe hash, so a resumed row lands
        // back in the partition its chain_pos_ refers to.
        const uint64_t h = probe_hashes_[probe_pos_];
        const JoinBuildState::Partition& part = state_->partition(h);
        if (chain_pos_ < 0 && !row_matched_) {
          chain_pos_ = key_null ? -1 : part.Head(h);
        }
        bool overflowed = false;
        while (chain_pos_ >= 0) {
          const int64_t node = chain_pos_;
          chain_pos_ = part.next[node];
          if (part.hashes[node] == h &&
              KeysEqual(*probe_batch_, i, *part.rows, node)) {
            EmitPair(*probe_batch_, i, *part.rows, node, filled);
            filled++;
            row_matched_ = true;
            if (filled >= ctx->vector_size) {
              overflowed = true;
              break;
            }
          }
        }
        if (overflowed) {
          batch_done = false;
          break;
        }
        if (type_ == JoinType::kLeftOuter && !row_matched_) {
          EmitProbeOnly(*probe_batch_, i, filled, true);
          filled++;
        }
        probe_pos_++;
        chain_pos_ = -1;
        row_matched_ = false;
        if (filled >= ctx->vector_size) {
          batch_done = probe_pos_ >= n;
          break;
        }
      }
      if (probe_pos_ >= n && batch_done) probe_batch_ = nullptr;
      if (filled >= ctx->vector_size) break;
    }

    if (filled == 0) {
      if (eos_) return nullptr;
      continue;  // batch produced no output; pull the next one
    }
    out_->set_rows(filled);
    return out_.get();
  }
}

// ---------------------------------------------------------------------------
// HashJoinOp (serial facade)
// ---------------------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr build, OperatorPtr probe,
                       std::vector<int> build_keys,
                       std::vector<int> probe_keys, JoinType type)
    : probe_child_(std::move(probe)), type_(type) {
  std::vector<OperatorPtr> chains;
  chains.push_back(std::move(build));
  state_ = std::make_shared<JoinBuildState>(std::move(chains),
                                            std::move(build_keys));
  state_->RegisterProber();
  // Output schema known at construction (parents need it before Open).
  out_schema_ = JoinOutputSchema(probe_child_->output_schema(),
                                 state_->schema(), type_);
  prober_.Init(state_.get(), std::move(probe_keys), type_,
               &probe_child_->output_schema(), &out_schema_);
}

Status HashJoinOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(probe_child_->Open(ctx));
  return prober_.Open(ctx);
}

void HashJoinOp::CloseImpl() {
  if (probe_child_) probe_child_->Close();
  if (state_) state_->CloseChains();
  prober_.Close(ctx_);
}

Result<Batch*> HashJoinOp::NextImpl() {
  X100_RETURN_IF_ERROR(state_->EnsureBuilt(ctx_));
  return prober_.Next(probe_child_.get(), ctx_);
}

// ---------------------------------------------------------------------------
// JoinProbeOp (pipeline worker)
// ---------------------------------------------------------------------------

JoinProbeOp::JoinProbeOp(OperatorPtr probe, JoinBuildStatePtr state,
                         std::vector<int> probe_keys, JoinType type)
    : probe_child_(std::move(probe)),
      state_(std::move(state)),
      type_(type) {
  state_->RegisterProber();
  out_schema_ = JoinOutputSchema(probe_child_->output_schema(),
                                 state_->schema(), type_);
  prober_.Init(state_.get(), std::move(probe_keys), type_,
               &probe_child_->output_schema(), &out_schema_);
}

Status JoinProbeOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(probe_child_->Open(ctx));
  return prober_.Open(ctx);
}

void JoinProbeOp::CloseImpl() {
  if (probe_child_) probe_child_->Close();
  if (state_) state_->CloseChains();
  prober_.Close(ctx_);
}

Result<Batch*> JoinProbeOp::NextImpl() {
  X100_RETURN_IF_ERROR(state_->EnsureBuilt(ctx_));
  return prober_.Next(probe_child_.get(), ctx_);
}

}  // namespace x100
