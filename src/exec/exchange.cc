#include "exec/exchange.h"

namespace x100 {

XchgOp::XchgOp(std::vector<OperatorPtr> producers, int queue_capacity)
    : producers_(std::move(producers)), queue_capacity_(queue_capacity) {}

Status XchgOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  if (producers_.empty()) {
    return Status::InvalidArgument("exchange needs at least one producer");
  }
  scheduler_ =
      ctx->scheduler != nullptr ? ctx->scheduler : TaskScheduler::Global();
  active_producers_ = static_cast<int>(producers_.size());
  shutdown_ = false;
  producer_error_ = Status::OK();
  group_ = std::make_unique<TaskGroup>(scheduler_, ctx->cancel);
  // Cancellation must wake both the consumer (not_empty_) and any
  // producer parked in HelpUntil the moment it fires; with callbacks
  // there is no polling interval during which a cancelled producer still
  // occupies a pool worker.
  if (ctx->cancel != nullptr) {
    cancel_callback_ = ctx->cancel->AddCallback([this] {
      {
        std::lock_guard<std::mutex> lock(mu_);
        not_empty_.notify_all();
      }
      scheduler_->WakeHelpers();
    });
  }
  for (int p = 0; p < static_cast<int>(producers_.size()); p++) {
    group_->Spawn([this, p] { return ProducerLoop(p); });
  }
  opened_ = true;
  return Status::OK();
}

Status XchgOp::ProducerLoop(int p) {
  Operator* op = producers_[p].get();
  Status status = op->Open(ctx_);
  while (status.ok()) {
    if (group_->IsCancelled()) {
      status = Status::Cancelled("query cancelled");
      break;
    }
    auto batch = op->Next();
    if (!batch.ok()) {
      status = batch.status();
      break;
    }
    if (*batch == nullptr) break;  // producer EOS
    // Deep-copy: the producer's batch is reused on its next Next().
    auto owned = (*batch)->Compact(op->output_schema());
    std::unique_lock<std::mutex> lock(mu_);
    // A producer blocked on a full queue must NOT hold its pool worker
    // hostage: with several exchanges in one plan (or concurrent
    // parallel queries) on a small pool that starves the other producers
    // and deadlocks the plan. HelpUntil lends this thread to whatever
    // tasks are queued and parks on the scheduler's work signal
    // otherwise; consumer pops, Close, sibling failure and cancellation
    // all WakeHelpers().
    while (!shutdown_ && !group_->IsCancelled() &&
           static_cast<int>(queue_.size()) >= queue_capacity_) {
      lock.unlock();
      scheduler_->HelpUntil([this] {
        std::lock_guard<std::mutex> l(mu_);
        return shutdown_ || group_->IsCancelled() ||
               static_cast<int>(queue_.size()) < queue_capacity_;
      });
      lock.lock();
    }
    if (shutdown_ || group_->IsCancelled()) {
      status = Status::Cancelled("exchange shut down");
      break;
    }
    queue_.push_back(std::move(owned));
    not_empty_.notify_one();
  }
  op->Close();
  // A failing producer cancels its siblings BEFORE waking them: the
  // TaskGroup's own cancellation (via Finish) runs only after this
  // function returns, which would leave a parked sibling re-checking a
  // not-yet-cancelled group.
  if (!status.ok()) group_->Cancel();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && !status.IsCancelled() && producer_error_.ok()) {
      producer_error_ = status;
    }
    active_producers_--;
  }
  not_empty_.notify_all();
  scheduler_->WakeHelpers();
  return status;
}

Result<Batch*> XchgOp::NextImpl() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!producer_error_.ok()) return producer_error_;
    if (ctx_->cancel != nullptr && ctx_->cancel->IsCancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (!queue_.empty()) {
      const bool was_full =
          static_cast<int>(queue_.size()) >= queue_capacity_;
      current_ = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      // Only a full->non-full transition can unpark a producer; waking
      // the process-wide helper set per batch would stampede the
      // scheduler lock for nothing.
      if (was_full) scheduler_->WakeHelpers();
      return current_.get();
    }
    if (active_producers_ == 0) return nullptr;
    // Untimed wait: every state change re-checked above has an explicit
    // notify (producer push/exit, Close, cancellation callback).
    not_empty_.wait(lock);
  }
}

void XchgOp::CloseImpl() {
  if (cancel_callback_ >= 0 && ctx_ != nullptr &&
      ctx_->cancel != nullptr) {
    // Unregister before tearing down: the token outlives this operator.
    ctx_->cancel->RemoveCallback(cancel_callback_);
    cancel_callback_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    queue_.clear();  // unblock producers waiting on a full queue
  }
  not_empty_.notify_all();
  if (scheduler_ != nullptr) scheduler_->WakeHelpers();
  if (group_ != nullptr) {
    group_->Cancel();
    group_->Wait();  // joins every in-flight producer task
    group_.reset();
  }
}

}  // namespace x100
