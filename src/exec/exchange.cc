#include "exec/exchange.h"

namespace x100 {

XchgOp::XchgOp(std::vector<OperatorPtr> producers, int queue_capacity)
    : producers_(std::move(producers)), queue_capacity_(queue_capacity) {}

Status XchgOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  if (producers_.empty()) {
    return Status::InvalidArgument("exchange needs at least one producer");
  }
  scheduler_ =
      ctx->scheduler != nullptr ? ctx->scheduler : TaskScheduler::Global();
  active_producers_ = static_cast<int>(producers_.size());
  shutdown_ = false;
  producer_error_ = Status::OK();
  group_ = std::make_unique<TaskGroup>(scheduler_, ctx->cancel);
  for (int p = 0; p < static_cast<int>(producers_.size()); p++) {
    group_->Spawn([this, p] { return ProducerLoop(p); });
  }
  opened_ = true;
  return Status::OK();
}

Status XchgOp::ProducerLoop(int p) {
  Operator* op = producers_[p].get();
  Status status = op->Open(ctx_);
  while (status.ok()) {
    if (group_->IsCancelled()) {
      status = Status::Cancelled("query cancelled");
      break;
    }
    auto batch = op->Next();
    if (!batch.ok()) {
      status = batch.status();
      break;
    }
    if (*batch == nullptr) break;  // producer EOS
    // Deep-copy: the producer's batch is reused on its next Next().
    auto owned = (*batch)->Compact(op->output_schema());
    std::unique_lock<std::mutex> lock(mu_);
    // A producer blocked on a full queue must NOT hold its pool worker
    // hostage: with several exchanges in one plan (or concurrent parallel
    // queries) on a small pool that starves the other producers and
    // deadlocks the plan. Instead, help the scheduler run other queued
    // tasks while waiting; fall back to a short timed wait when nothing
    // is runnable (group cancellation has no hook into not_full_, so the
    // wait polls). Helping bounds recursion by the number of live
    // producer tasks.
    while (!shutdown_ && !group_->IsCancelled() &&
           static_cast<int>(queue_.size()) >= queue_capacity_) {
      lock.unlock();
      const bool helped = scheduler_->RunOneTask();
      lock.lock();
      if (!helped && !shutdown_ && !group_->IsCancelled() &&
          static_cast<int>(queue_.size()) >= queue_capacity_) {
        not_full_.wait_for(lock, std::chrono::milliseconds(5));
      }
    }
    if (shutdown_ || group_->IsCancelled()) {
      status = Status::Cancelled("exchange shut down");
      break;
    }
    queue_.push_back(std::move(owned));
    not_empty_.notify_one();
  }
  op->Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && !status.IsCancelled() && producer_error_.ok()) {
      producer_error_ = status;
    }
    active_producers_--;
  }
  not_empty_.notify_all();
  return status;
}

Result<Batch*> XchgOp::NextImpl() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!producer_error_.ok()) return producer_error_;
    if (ctx_->cancel != nullptr && ctx_->cancel->IsCancelled()) {
      not_full_.notify_all();
      return Status::Cancelled("query cancelled");
    }
    if (!queue_.empty()) {
      current_ = std::move(queue_.front());
      queue_.pop_front();
      not_full_.notify_one();
      return current_.get();
    }
    if (active_producers_ == 0) return nullptr;
    // Wait with a timeout so cancellation is observed promptly even if no
    // producer ever posts again.
    not_empty_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void XchgOp::CloseImpl() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    queue_.clear();  // unblock producers waiting on a full queue
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  if (group_ != nullptr) {
    group_->Cancel();
    group_->Wait();  // joins every in-flight producer task
    group_.reset();
  }
}

}  // namespace x100
