#include "exec/exchange.h"

namespace x100 {

XchgOp::XchgOp(std::vector<OperatorPtr> producers, int queue_capacity)
    : producers_(std::move(producers)), queue_capacity_(queue_capacity) {}

Status XchgOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  if (producers_.empty()) {
    return Status::InvalidArgument("exchange needs at least one producer");
  }
  active_producers_ = static_cast<int>(producers_.size());
  shutdown_ = false;
  for (int p = 0; p < static_cast<int>(producers_.size()); p++) {
    threads_.emplace_back([this, p] { ProducerLoop(p); });
  }
  opened_ = true;
  return Status::OK();
}

void XchgOp::ProducerLoop(int p) {
  Operator* op = producers_[p].get();
  Status status = op->Open(ctx_);
  while (status.ok()) {
    if (ctx_->cancel != nullptr && ctx_->cancel->IsCancelled()) {
      status = Status::Cancelled("query cancelled");
      break;
    }
    auto batch = op->Next();
    if (!batch.ok()) {
      status = batch.status();
      break;
    }
    if (*batch == nullptr) break;  // producer EOS
    // Deep-copy: the producer's batch is reused on its next Next().
    auto owned = (*batch)->Compact(op->output_schema());
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return shutdown_ ||
             static_cast<int>(queue_.size()) < queue_capacity_ ||
             (ctx_->cancel != nullptr && ctx_->cancel->IsCancelled());
    });
    if (shutdown_ ||
        (ctx_->cancel != nullptr && ctx_->cancel->IsCancelled())) {
      status = Status::Cancelled("exchange shut down");
      break;
    }
    queue_.push_back(std::move(owned));
    not_empty_.notify_one();
  }
  op->Close();
  std::lock_guard<std::mutex> lock(mu_);
  if (!status.ok() && !status.IsCancelled() && producer_error_.ok()) {
    producer_error_ = status;
  }
  active_producers_--;
  not_empty_.notify_all();
}

Result<Batch*> XchgOp::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!producer_error_.ok()) return producer_error_;
    if (ctx_->cancel != nullptr && ctx_->cancel->IsCancelled()) {
      not_full_.notify_all();
      return Status::Cancelled("query cancelled");
    }
    if (!queue_.empty()) {
      current_ = std::move(queue_.front());
      queue_.pop_front();
      not_full_.notify_one();
      return current_.get();
    }
    if (active_producers_ == 0) return nullptr;
    // Wait with a timeout so cancellation is observed promptly even if no
    // producer ever posts again.
    not_empty_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void XchgOp::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    queue_.clear();  // unblock producers waiting on a full queue
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace x100
