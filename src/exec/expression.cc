#include "exec/expression.h"

#include <cstring>

#include "simd/simd_kernels.h"

namespace x100 {

namespace {

/// Fills a register with a constant (broadcast), used when no val-shaped
/// kernel exists for an argument position.
void BroadcastConst(const Value& v, int n, Vector* out) {
  switch (out->type()) {
    case TypeId::kBool: {
      uint8_t* d = out->Data<uint8_t>();
      std::memset(d, v.AsBool() ? 1 : 0, n);
      break;
    }
    case TypeId::kI8: {
      int8_t* d = out->Data<int8_t>();
      std::fill(d, d + n, static_cast<int8_t>(v.AsI64()));
      break;
    }
    case TypeId::kI16: {
      int16_t* d = out->Data<int16_t>();
      std::fill(d, d + n, static_cast<int16_t>(v.AsI64()));
      break;
    }
    case TypeId::kI32:
    case TypeId::kDate: {
      int32_t* d = out->Data<int32_t>();
      std::fill(d, d + n, static_cast<int32_t>(v.AsI64()));
      break;
    }
    case TypeId::kI64: {
      int64_t* d = out->Data<int64_t>();
      std::fill(d, d + n, v.AsI64());
      break;
    }
    case TypeId::kF64: {
      double* d = out->Data<double>();
      std::fill(d, d + n, v.AsF64());
      break;
    }
    case TypeId::kStr: {
      StrRef* d = out->Data<StrRef>();
      const StrRef r = out->heap()->Add(v.AsStr());
      std::fill(d, d + n, r);
      break;
    }
  }
}

}  // namespace

Result<std::unique_ptr<ExprProgram>> ExprProgram::Compile(const ExprPtr& e,
                                                          int vector_size,
                                                          SimdLevel simd) {
  if (!e->bound) {
    return Status::InvalidArgument("expression not bound: " + e->ToString());
  }
  EnsureKernelsRegistered();
  auto prog = std::unique_ptr<ExprProgram>(new ExprProgram());
  prog->vector_size_ = vector_size;
  prog->simd_ = simd;
  prog->out_type_ = e->type;
  prog->nullable_ = e->nullable;
  X100_ASSIGN_OR_RETURN(prog->result_, prog->CompileNode(e));
  prog->result_nullable_ = e->nullable;
  prog->passthrough_ =
      std::make_unique<Vector>(e->type, vector_size);
  return prog;
}

Result<ExprProgram::ArgRef> ExprProgram::CompileNode(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kColRef:
      return ArgRef{ArgRef::Src::kInputCol, e->col};
    case Expr::Kind::kConst: {
      if (e->constant.is_null()) {
        return Status::InvalidArgument(
            "NULL literal reached the compiler (rewriter fold missing)");
      }
      auto slot = std::make_unique<ConstSlot>();
      slot->value = e->constant;
      switch (e->type) {
        case TypeId::kF64:
          slot->f64 = e->constant.AsF64();
          slot->ptr = &slot->f64;
          break;
        case TypeId::kStr:
          slot->str_storage = e->constant.AsStr();
          slot->str = StrRef(slot->str_storage);
          slot->ptr = &slot->str;
          break;
        default:
          slot->i64 = e->constant.AsI64();
          slot->ptr = &slot->i64;  // little-endian: narrower reads alias
          break;
      }
      consts_.push_back(std::move(slot));
      return ArgRef{ArgRef::Src::kConst,
                    static_cast<int>(consts_.size()) - 1};
    }
    case Expr::Kind::kCall:
      break;
  }

  // isnull / isnotnull materialize the indicator column — they are the
  // bridge from the two-column representation back into value space.
  if (e->fn == "isnull" || e->fn == "isnotnull") {
    ArgRef arg;
    X100_ASSIGN_OR_RETURN(arg, CompileNode(e->args[0]));
    Step step;
    step.is_isnull = true;
    step.negate_isnull = e->fn == "isnotnull";
    step.args = {arg};
    step.out_type = TypeId::kBool;
    regs_.push_back(std::make_unique<Vector>(TypeId::kBool, vector_size_));
    step.out_reg = static_cast<int>(regs_.size()) - 1;
    steps_.push_back(std::move(step));
    return ArgRef{ArgRef::Src::kReg, steps_.back().out_reg};
  }

  std::vector<ArgRef> args;
  std::vector<ArgSig> sigs;
  for (const ExprPtr& a : e->args) {
    ArgRef r;
    X100_ASSIGN_OR_RETURN(r, CompileNode(a));
    args.push_back(r);
    sigs.push_back(ArgSig{a->type, r.src == ArgRef::Src::kConst});
  }

  auto* reg = PrimitiveRegistry::Get();
  MapEntry entry = reg->FindMap("map", e->fn, sigs, simd_);
  if (entry.fn == nullptr) {
    // Fall back to all-vector shapes, broadcasting constants.
    bool changed = false;
    for (size_t i = 0; i < args.size(); i++) {
      if (!sigs[i].is_const) continue;
      Step bc;
      bc.args = {args[i]};
      bc.out_type = e->args[i]->type;
      regs_.push_back(
          std::make_unique<Vector>(e->args[i]->type, vector_size_));
      bc.out_reg = static_cast<int>(regs_.size()) - 1;
      steps_.push_back(std::move(bc));
      args[i] = ArgRef{ArgRef::Src::kReg, steps_.back().out_reg};
      sigs[i].is_const = false;
      changed = true;
    }
    if (changed) entry = reg->FindMap("map", e->fn, sigs, simd_);
    if (entry.fn == nullptr) {
      return Status::NotFound("no kernel for " +
                              BuildSignature("map", e->fn, sigs));
    }
  }

  Step step;
  step.fn = entry.fn;
  step.args = args;
  step.out_type = entry.out_type;
  for (size_t i = 0; i < args.size(); i++) {
    if (e->args[i]->nullable) step.null_sources.push_back(args[i]);
  }
  regs_.push_back(std::make_unique<Vector>(entry.out_type, vector_size_));
  step.out_reg = static_cast<int>(regs_.size()) - 1;
  steps_.push_back(std::move(step));
  return ArgRef{ArgRef::Src::kReg, steps_.back().out_reg};
}

const void* ExprProgram::ResolveData(const ArgRef& a, Batch& batch) const {
  switch (a.src) {
    case ArgRef::Src::kInputCol: return batch.column(a.index)->RawData();
    case ArgRef::Src::kReg: return regs_[a.index]->RawData();
    case ArgRef::Src::kConst: return consts_[a.index]->ptr;
  }
  return nullptr;
}

const uint8_t* ExprProgram::ResolveNulls(const ArgRef& a,
                                         Batch& batch) const {
  switch (a.src) {
    case ArgRef::Src::kInputCol: {
      const Vector* v = batch.column(a.index);
      return v->has_nulls() ? v->nulls() : nullptr;
    }
    case ArgRef::Src::kReg: {
      const Vector* v = regs_[a.index].get();
      return v->has_nulls() ? v->nulls() : nullptr;
    }
    case ArgRef::Src::kConst:
      return nullptr;
  }
  return nullptr;
}

Result<const Vector*> ExprProgram::Eval(Batch& batch) {
  const int n = batch.ActiveRows();
  const sel_t* sel = batch.sel();
  const int rows = batch.rows();

  for (auto& r : regs_) {
    if (r->heap()) r->heap()->Reset();
    r->ClearNulls();
  }

  for (const Step& step : steps_) {
    Vector* out = regs_[step.out_reg].get();
    if (step.is_isnull) {
      const uint8_t* nulls = ResolveNulls(step.args[0], batch);
      uint8_t* o = out->Data<uint8_t>();
      if (nulls == nullptr) {
        std::memset(o, step.negate_isnull ? 1 : 0, rows);
      } else if (step.negate_isnull) {
        simd::IsZeroBytes(rows, nulls, o, simd_);
      } else {
        std::memcpy(o, nulls, rows);
      }
      continue;
    }
    if (step.fn == nullptr) {
      // Broadcast of a constant into a register.
      BroadcastConst(consts_[step.args[0].index]->value, rows, out);
      continue;
    }
    const void* argp[8];
    for (size_t i = 0; i < step.args.size(); i++) {
      argp[i] = ResolveData(step.args[i], batch);
    }
    PrimCtx ctx{out->heap()};
    X100_RETURN_IF_ERROR(step.fn(n, sel, argp, out->RawData(), &ctx));
    // Strict NULL propagation: OR the input indicators.
    if (!step.null_sources.empty()) {
      uint8_t* on = out->MutableNulls();
      std::memset(on, 0, rows);
      for (const ArgRef& src : step.null_sources) {
        const uint8_t* sn = ResolveNulls(src, batch);
        if (sn == nullptr) continue;
        simd::OrBytesInto(rows, sn, on, simd_);
      }
    }
  }

  switch (result_.src) {
    case ArgRef::Src::kInputCol:
      return batch.column(result_.index);
    case ArgRef::Src::kReg:
      return regs_[result_.index].get();
    case ArgRef::Src::kConst:
      if (passthrough_->heap()) passthrough_->heap()->Reset();
      BroadcastConst(consts_[result_.index]->value, rows,
                     passthrough_.get());
      return passthrough_.get();
  }
  return Status::Internal("unreachable");
}

}  // namespace x100
