// XchgOp: exchange union — the operator the rewriter's Parallelizer rule
// inserts (paper §"Multi-core": "The Vectorwise rewriter was used to
// implement a Volcano-style query parallelizer").
//
// N producer tasks each drive an independent partial plan (typically a
// morsel-driven scan + partial aggregate); batches flow through a bounded
// queue to the single consumer. Producers no longer own dedicated
// std::threads: they are TaskGroup tasks on the shared TaskScheduler, so
// concurrent parallel queries share one hardware-sized pool instead of
// oversubscribing the machine (§"When more cores hurts"). Cancellation
// wakes every queue wait and joins all in-flight tasks before Close
// returns — the "parallelism" hazard of §"Query cancellation".
//
// Backpressure is scheduler-aware, never time-polled: a producer blocked
// on a full queue enters TaskScheduler::HelpUntil, lending its thread to
// whatever tasks are queued (other exchanges' producers, other queries'
// pipelines) and parking on the scheduler's work signal while idle. Every
// event that can unblock it — consumer pop, Close, a failing sibling, a
// CancellationToken callback registered at Open — calls WakeHelpers(), so
// a cancelled producer releases its pool worker immediately instead of
// sleeping out a poll interval.
#ifndef X100_EXEC_EXCHANGE_H_
#define X100_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/task_scheduler.h"
#include "exec/operator.h"

namespace x100 {

class XchgOp : public Operator {
 public:
  /// All producers must share one output schema.
  explicit XchgOp(std::vector<OperatorPtr> producers,
                  int queue_capacity = 8);
  ~XchgOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override {
    return producers_.front()->output_schema();
  }
  std::string name() const override {
    return "XchgUnion(" + std::to_string(producers_.size()) + ")";
  }

 private:
  Status ProducerLoop(int p);

  std::vector<OperatorPtr> producers_;
  int queue_capacity_;
  ExecContext* ctx_ = nullptr;
  TaskScheduler* scheduler_ = nullptr;

  std::mutex mu_;
  std::condition_variable not_empty_;  // consumer wake (producers use
                                       // the scheduler's HelpUntil)
  std::deque<std::unique_ptr<Batch>> queue_;
  Status producer_error_;
  int active_producers_ = 0;
  bool shutdown_ = false;

  std::unique_ptr<TaskGroup> group_;
  std::unique_ptr<Batch> current_;
  bool opened_ = false;
  int cancel_callback_ = -1;  // registered on ctx->cancel while open
};

}  // namespace x100

#endif  // X100_EXEC_EXCHANGE_H_
