// RowBuffer spill serialization — the byte format pipeline breakers write
// through SpillFile when a memory reservation fails.
//
// Layout (all little-endian, matching the in-memory representation):
//   i64  rows
//   per column (schema order):
//     u8   has_nulls
//     [rows bytes of null flags when has_nulls]
//     kStr column:   per row { u32 len, len payload bytes } (NULL rows
//                    write len 0) — StrRef pointers never hit disk.
//     other columns: rows * TypeWidth raw cell bytes
// The schema itself is not serialized: the reloading site always knows it
// (it constructed the spilled buffer), and spilled blobs never outlive
// their query. Deserialize treats every length field as untrusted
// (common/pod_serde.h): corrupt blobs fail with kIoError, never fault.
#include "exec/row_buffer.h"

#include <cstdint>

#include "common/pod_serde.h"
#include "common/result.h"

namespace x100 {

namespace {

Status Corrupt() {
  return Status::IoError("corrupt spill blob: truncated row buffer");
}

}  // namespace

void RowBuffer::SerializeTo(std::vector<uint8_t>* out) const {
  serde::AppendPod<int64_t>(out, rows_);
  for (int c = 0; c < schema_.num_fields(); c++) {
    const Column& col = cols_[c];
    serde::AppendPod<uint8_t>(out, col.nulls.empty() ? 0 : 1);
    if (!col.nulls.empty()) {
      out->insert(out->end(), col.nulls.begin(), col.nulls.end());
    }
    if (schema_.field(c).type == TypeId::kStr) {
      const StrRef* refs = reinterpret_cast<const StrRef*>(col.fixed.data());
      for (int64_t r = 0; r < rows_; r++) {
        if (IsNull(c, r)) {
          serde::AppendPod<uint32_t>(out, 0);
          continue;
        }
        const std::string_view sv = refs[r].view();
        serde::AppendPod<uint32_t>(out, static_cast<uint32_t>(sv.size()));
        const auto* p = reinterpret_cast<const uint8_t*>(sv.data());
        out->insert(out->end(), p, p + sv.size());
      }
    } else {
      out->insert(out->end(), col.fixed.begin(), col.fixed.end());
    }
  }
}

void RowBuffer::SerializeRowsTo(const std::vector<int64_t>& order,
                                int64_t begin, int64_t end,
                                std::vector<uint8_t>* out) const {
  const int64_t n = end - begin;
  serde::AppendPod<int64_t>(out, n);
  for (int c = 0; c < schema_.num_fields(); c++) {
    const Column& col = cols_[c];
    serde::AppendPod<uint8_t>(out, col.nulls.empty() ? 0 : 1);
    if (!col.nulls.empty()) {
      for (int64_t i = begin; i < end; i++) {
        out->push_back(col.nulls[order[i]]);
      }
    }
    const int w = TypeWidth(schema_.field(c).type);
    if (schema_.field(c).type == TypeId::kStr) {
      const StrRef* refs = reinterpret_cast<const StrRef*>(col.fixed.data());
      for (int64_t i = begin; i < end; i++) {
        const int64_t r = order[i];
        if (IsNull(c, r)) {
          serde::AppendPod<uint32_t>(out, 0);
          continue;
        }
        const std::string_view sv = refs[r].view();
        serde::AppendPod<uint32_t>(out, static_cast<uint32_t>(sv.size()));
        const auto* p = reinterpret_cast<const uint8_t*>(sv.data());
        out->insert(out->end(), p, p + sv.size());
      }
    } else {
      for (int64_t i = begin; i < end; i++) {
        const uint8_t* p =
            col.fixed.data() + static_cast<size_t>(order[i]) * w;
        out->insert(out->end(), p, p + w);
      }
    }
  }
}

Result<std::unique_ptr<RowBuffer>> RowBuffer::Deserialize(
    const Schema& schema, const uint8_t* data, size_t size) {
  serde::Reader in{data, size};
  int64_t rows;
  if (!in.TakePod(&rows) || rows < 0) return Corrupt();
  // A row count no blob of this size could hold is corruption; rejecting
  // it here keeps every per-row loop below bounded by the blob itself.
  if (static_cast<uint64_t>(rows) > in.remaining()) return Corrupt();
  auto buf = std::make_unique<RowBuffer>(schema);
  for (int c = 0; c < schema.num_fields(); c++) {
    Column& col = buf->cols_[c];
    uint8_t has_nulls;
    if (!in.TakePod(&has_nulls)) return Corrupt();
    if (has_nulls) {
      const uint8_t* p;
      if (!in.Take(static_cast<size_t>(rows), &p)) return Corrupt();
      col.nulls.assign(p, p + rows);
    }
    const int w = TypeWidth(schema.field(c).type);
    if (schema.field(c).type == TypeId::kStr) {
      col.fixed.reserve(static_cast<size_t>(rows) * sizeof(StrRef));
      for (int64_t r = 0; r < rows; r++) {
        uint32_t len;
        if (!in.TakePod(&len)) return Corrupt();
        const uint8_t* p = nullptr;
        if (len > 0 && !in.Take(len, &p)) return Corrupt();
        const bool null = has_nulls && col.nulls[r] != 0;
        const StrRef ref =
            (null || len == 0)
                ? StrRef()
                : col.heap.Add(std::string_view(
                      reinterpret_cast<const char*>(p), len));
        const auto* rp = reinterpret_cast<const uint8_t*>(&ref);
        col.fixed.insert(col.fixed.end(), rp, rp + sizeof(StrRef));
      }
    } else {
      if (!in.TakePodVec(static_cast<size_t>(rows) * w, &col.fixed)) {
        return Corrupt();
      }
    }
  }
  buf->rows_ = rows;
  return buf;
}

}  // namespace x100
