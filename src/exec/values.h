// ValuesOp: an operator producing a fixed list of rows (VALUES lists,
// tests, constant inputs to joins).
#ifndef X100_EXEC_VALUES_H_
#define X100_EXEC_VALUES_H_

#include <memory>
#include <vector>

#include "exec/operator.h"

namespace x100 {

class ValuesOp : public Operator {
 public:
  ValuesOp(Schema schema, std::vector<std::vector<Value>> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}
  ~ValuesOp() override {}

  Status OpenImpl(ExecContext* ctx) override {
    ctx_ = ctx;
    pos_ = 0;
    out_ = std::make_unique<Batch>(schema_, ctx->vector_size);
    return Status::OK();
  }

  Result<Batch*> NextImpl() override {
    X100_RETURN_IF_ERROR(ctx_->CheckCancel());
    if (pos_ >= static_cast<int64_t>(rows_.size())) return nullptr;
    out_->Reset();
    const int n = static_cast<int>(std::min<int64_t>(
        ctx_->vector_size, static_cast<int64_t>(rows_.size()) - pos_));
    for (int j = 0; j < n; j++) {
      const std::vector<Value>& row = rows_[pos_ + j];
      for (int c = 0; c < schema_.num_fields(); c++) {
        Vector* v = out_->column(c);
        const Value& val = row[c];
        if (val.is_null()) {
          v->SetNull(j);
          continue;
        }
        switch (v->type()) {
          case TypeId::kBool: v->Data<uint8_t>()[j] = val.AsBool(); break;
          case TypeId::kI8:
            v->Data<int8_t>()[j] = static_cast<int8_t>(val.AsI64());
            break;
          case TypeId::kI16:
            v->Data<int16_t>()[j] = static_cast<int16_t>(val.AsI64());
            break;
          case TypeId::kI32:
          case TypeId::kDate:
            v->Data<int32_t>()[j] = static_cast<int32_t>(val.AsI64());
            break;
          case TypeId::kI64: v->Data<int64_t>()[j] = val.AsI64(); break;
          case TypeId::kF64: v->Data<double>()[j] = val.AsF64(); break;
          case TypeId::kStr:
            v->Data<StrRef>()[j] = v->heap()->Add(val.AsStr());
            break;
        }
        if (v->has_nulls()) v->MutableNulls()[j] = 0;
      }
    }
    pos_ += n;
    out_->set_rows(n);
    return out_.get();
  }

  void CloseImpl() override {}
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "Values"; }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  int64_t pos_ = 0;
  ExecContext* ctx_ = nullptr;
  std::unique_ptr<Batch> out_;
};

}  // namespace x100

#endif  // X100_EXEC_VALUES_H_
