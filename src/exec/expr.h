// Expression trees, shared by the algebra, the rewriter and the executor.
//
// The rewriter operates on unbound trees (column references by name); the
// Binder resolves references and types against an input schema; the
// ExprProgram (expression.h) compiles a bound tree into a sequence of
// primitive calls executed per vector.
#ifndef X100_EXEC_EXPR_H_
#define X100_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "vector/schema.h"

namespace x100 {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// An expression node. Kind-specific fields:
///  * kColRef: `name` (unbound) / `col` (bound input column index)
///  * kConst:  `constant`
///  * kCall:   `fn` (primitive op name: "add", "like", "year", …) + `args`
struct Expr {
  enum class Kind : uint8_t { kColRef, kConst, kCall };

  Kind kind;
  std::string name;   // column name (kColRef) — kept for diagnostics
  int col = -1;       // bound column index (kColRef)
  Value constant;     // kConst
  std::string fn;     // kCall
  std::vector<ExprPtr> args;

  // Binder results:
  TypeId type = TypeId::kI64;
  bool nullable = false;
  bool bound = false;

  std::string ToString() const;
};

ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
ExprPtr Call(std::string fn, std::vector<ExprPtr> args);

/// Convenience builders used by tests, query builders and the frontend.
inline ExprPtr Add(ExprPtr a, ExprPtr b) { return Call("add", {a, b}); }
inline ExprPtr Sub(ExprPtr a, ExprPtr b) { return Call("sub", {a, b}); }
inline ExprPtr Mul(ExprPtr a, ExprPtr b) { return Call("mul", {a, b}); }
inline ExprPtr Div(ExprPtr a, ExprPtr b) { return Call("div", {a, b}); }
inline ExprPtr Eq(ExprPtr a, ExprPtr b) { return Call("eq", {a, b}); }
inline ExprPtr Ne(ExprPtr a, ExprPtr b) { return Call("ne", {a, b}); }
inline ExprPtr Lt(ExprPtr a, ExprPtr b) { return Call("lt", {a, b}); }
inline ExprPtr Le(ExprPtr a, ExprPtr b) { return Call("le", {a, b}); }
inline ExprPtr Gt(ExprPtr a, ExprPtr b) { return Call("gt", {a, b}); }
inline ExprPtr Ge(ExprPtr a, ExprPtr b) { return Call("ge", {a, b}); }
inline ExprPtr And(ExprPtr a, ExprPtr b) { return Call("and", {a, b}); }
inline ExprPtr Or(ExprPtr a, ExprPtr b) { return Call("or", {a, b}); }
inline ExprPtr Not(ExprPtr a) { return Call("not", {a}); }

/// Deep copy (the rewriter transforms copies, never shared nodes).
ExprPtr CloneExpr(const ExprPtr& e);

/// Resolves column references and types against `schema`, inserting
/// implicit casts where the kernel type matrix requires them. Returns the
/// bound copy; the input is not modified.
Result<ExprPtr> BindExpr(const ExprPtr& e, const Schema& schema);

}  // namespace x100

#endif  // X100_EXEC_EXPR_H_
