// SelectOp (filter via selection vectors) and ProjectOp (expression
// evaluation) — the thin vectorized pipeline operators.
#ifndef X100_EXEC_SELECT_PROJECT_H_
#define X100_EXEC_SELECT_PROJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "exec/operator.h"

namespace x100 {

/// Filters by a boolean predicate. Qualifying rows are *selected*, not
/// copied: the operator refines the child batch's selection vector in
/// place (the X100 idiom measured by E1/E2). Rows whose predicate is NULL
/// do not qualify (SQL WHERE semantics).
class SelectOp : public Operator {
 public:
  SelectOp(OperatorPtr child, ExprPtr predicate);
  ~SelectOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { if (child_) child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return "Select"; }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;  // unbound
  std::unique_ptr<ExprProgram> program_;
  ExecContext* ctx_ = nullptr;
};

/// One output column of a projection.
struct ProjectItem {
  std::string name;
  ExprPtr expr;  // unbound against the child's schema
};

class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ProjectItem> items);
  ~ProjectOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { if (child_) child_->Close(); }
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override { return "Project"; }

 private:
  OperatorPtr child_;
  std::vector<ProjectItem> items_;
  std::vector<ExprPtr> bound_;
  Status init_status_;
  Schema out_schema_;
  std::vector<std::unique_ptr<ExprProgram>> programs_;
  std::unique_ptr<Batch> out_;
  ExecContext* ctx_ = nullptr;
};

}  // namespace x100

#endif  // X100_EXEC_SELECT_PROJECT_H_
