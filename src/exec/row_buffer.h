// RowBuffer: columnar materialization used by pipeline breakers (hash join
// build side, aggregation key store, sort).
#ifndef X100_EXEC_ROW_BUFFER_H_
#define X100_EXEC_ROW_BUFFER_H_

#include <cstring>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "vector/batch.h"
#include "vector/schema.h"
#include "vector/string_heap.h"

namespace x100 {

class RowBuffer {
 public:
  explicit RowBuffer(Schema schema) : schema_(std::move(schema)) {
    cols_.resize(schema_.num_fields());
  }

  const Schema& schema() const { return schema_; }
  int64_t rows() const { return rows_; }

  /// Appends all live rows of `b` (columns must match the schema).
  void AppendBatch(const Batch& b) {
    const int n = b.ActiveRows();
    const sel_t* sel = b.sel();
    for (int c = 0; c < schema_.num_fields(); c++) {
      AppendColumn(c, *b.column(c), n, sel);
    }
    rows_ += n;
  }

  /// Appends a single row given per-column source vectors and an index.
  void AppendRowFrom(const Batch& b, int i) {
    for (int c = 0; c < schema_.num_fields(); c++) {
      AppendCell(c, *b.column(c), i);
    }
    rows_++;
  }

  /// Appends row `i` gathered from loose column vectors (one per field).
  void AppendRowFromVectors(const std::vector<const Vector*>& cols, int i) {
    for (int c = 0; c < schema_.num_fields(); c++) {
      AppendCell(c, *cols[c], i);
    }
    rows_++;
  }

  /// Appends every row of `other` (same schema). Fixed-width columns copy
  /// in bulk; strings re-intern into this buffer's heap. Used by pipeline
  /// barriers merging per-worker partial buffers.
  void AppendRows(const RowBuffer& other) {
    for (int c = 0; c < schema_.num_fields(); c++) {
      Column& dst = cols_[c];
      const Column& src = other.cols_[c];
      // Null indicators first: materialize ours if either side has any.
      if (!src.nulls.empty() || !dst.nulls.empty()) {
        EnsureNulls(c);
        if (src.nulls.empty()) {
          dst.nulls.insert(dst.nulls.end(), other.rows_, 0);
        } else {
          dst.nulls.insert(dst.nulls.end(), src.nulls.begin(),
                           src.nulls.end());
        }
      }
      if (schema_.field(c).type == TypeId::kStr) {
        const StrRef* refs =
            reinterpret_cast<const StrRef*>(src.fixed.data());
        for (int64_t r = 0; r < other.rows_; r++) {
          const StrRef copied = other.IsNull(c, r)
                                    ? StrRef()
                                    : dst.heap.Add(refs[r].view());
          const auto* p = reinterpret_cast<const uint8_t*>(&copied);
          dst.fixed.insert(dst.fixed.end(), p, p + sizeof(StrRef));
        }
      } else {
        dst.fixed.insert(dst.fixed.end(), src.fixed.begin(),
                         src.fixed.end());
      }
    }
    rows_ += other.rows_;
  }

  /// Appends one row copied out of another RowBuffer with the same schema
  /// (group-table merge at aggregation barriers).
  void AppendRowFromBuffer(const RowBuffer& other, int64_t row) {
    for (int c = 0; c < schema_.num_fields(); c++) {
      Column& dst = cols_[c];
      const int w = TypeWidth(schema_.field(c).type);
      if (other.IsNull(c, row)) {
        EnsureNulls(c);
        dst.nulls.push_back(1);
        dst.fixed.insert(dst.fixed.end(), w, 0);
        continue;
      }
      if (!dst.nulls.empty()) dst.nulls.push_back(0);
      if (schema_.field(c).type == TypeId::kStr) {
        const StrRef copied =
            dst.heap.Add(other.Col<StrRef>(c)[row].view());
        const auto* p = reinterpret_cast<const uint8_t*>(&copied);
        dst.fixed.insert(dst.fixed.end(), p, p + sizeof(StrRef));
      } else {
        const uint8_t* p =
            other.cols_[c].fixed.data() + static_cast<size_t>(row) * w;
        dst.fixed.insert(dst.fixed.end(), p, p + w);
      }
    }
    rows_++;
  }

  template <typename T>
  const T* Col(int c) const {
    return reinterpret_cast<const T*>(cols_[c].fixed.data());
  }
  const uint8_t* Nulls(int c) const {
    return cols_[c].nulls.empty() ? nullptr : cols_[c].nulls.data();
  }
  bool IsNull(int c, int64_t row) const {
    return !cols_[c].nulls.empty() && cols_[c].nulls[row] != 0;
  }

  /// Copies row `row`, column `c` into position `out_i` of `out`.
  void GatherCell(int c, int64_t row, Vector* out, int out_i) const {
    const Column& col = cols_[c];
    const int w = TypeWidth(schema_.field(c).type);
    if (IsNull(c, row)) {
      out->SetNull(out_i);
      return;
    }
    if (schema_.field(c).type == TypeId::kStr) {
      const StrRef* refs = reinterpret_cast<const StrRef*>(col.fixed.data());
      out->Data<StrRef>()[out_i] = out->heap()->Add(refs[row].view());
    } else {
      std::memcpy(static_cast<uint8_t*>(out->RawData()) +
                      static_cast<size_t>(out_i) * w,
                  col.fixed.data() + static_cast<size_t>(row) * w, w);
    }
    if (out->has_nulls()) out->MutableNulls()[out_i] = 0;
  }

  /// Value view of one cell (sort comparators, result collection).
  Value GetValue(int c, int64_t row) const {
    if (IsNull(c, row)) return Value::Null(schema_.field(c).type);
    switch (schema_.field(c).type) {
      case TypeId::kBool: return Value::Bool(Col<uint8_t>(c)[row]);
      case TypeId::kI8: return Value::I8(Col<int8_t>(c)[row]);
      case TypeId::kI16: return Value::I16(Col<int16_t>(c)[row]);
      case TypeId::kI32: return Value::I32(Col<int32_t>(c)[row]);
      case TypeId::kDate: return Value::Date(Col<int32_t>(c)[row]);
      case TypeId::kI64: return Value::I64(Col<int64_t>(c)[row]);
      case TypeId::kF64: return Value::F64(Col<double>(c)[row]);
      case TypeId::kStr: return Value::Str(Col<StrRef>(c)[row].ToString());
    }
    return Value::Null(schema_.field(c).type);
  }

  size_t MemoryBytes() const {
    size_t b = 0;
    for (const Column& c : cols_) {
      b += c.fixed.capacity() + c.nulls.capacity() + c.heap.bytes_allocated();
    }
    return b;
  }

  /// Appends a self-contained serialization of this buffer to `out` (the
  /// spill format: fixed columns raw, strings re-inlined as length-
  /// prefixed payloads so StrRef pointers never hit disk). The schema is
  /// NOT serialized; the reloader supplies it. Optionally restricted to
  /// rows [begin, end) in `order`'s permutation — how sorted runs spill
  /// in emit order. Implemented in row_buffer.cc.
  void SerializeTo(std::vector<uint8_t>* out) const;
  void SerializeRowsTo(const std::vector<int64_t>& order, int64_t begin,
                       int64_t end, std::vector<uint8_t>* out) const;

  /// Rebuilds a buffer from SerializeTo bytes. Fails with kIoError on a
  /// truncated or corrupt blob (a spill reload must never fault).
  static Result<std::unique_ptr<RowBuffer>> Deserialize(
      const Schema& schema, const uint8_t* data, size_t size);

 private:
  struct Column {
    std::vector<uint8_t> fixed;  // typed cells (StrRef for strings)
    std::vector<uint8_t> nulls;  // empty until first null
    StringHeap heap;
  };

  void EnsureNulls(int c) {
    // Size from the cells already present in *this column* — during a
    // batch append rows_ lags behind the per-column cell count.
    const size_t cells =
        cols_[c].fixed.size() / TypeWidth(schema_.field(c).type);
    if (cols_[c].nulls.empty()) cols_[c].nulls.resize(cells, 0);
  }

  void AppendCell(int c, const Vector& v, int i) {
    Column& col = cols_[c];
    const int w = TypeWidth(v.type());
    if (v.IsNull(i)) {
      EnsureNulls(c);
      col.nulls.push_back(1);
      col.fixed.insert(col.fixed.end(), w, 0);
      return;
    }
    if (!col.nulls.empty()) col.nulls.push_back(0);
    if (v.type() == TypeId::kStr) {
      const StrRef copied = col.heap.Add(v.Data<StrRef>()[i].view());
      const auto* p = reinterpret_cast<const uint8_t*>(&copied);
      col.fixed.insert(col.fixed.end(), p, p + sizeof(StrRef));
    } else {
      const uint8_t* p = static_cast<const uint8_t*>(v.RawData()) +
                         static_cast<size_t>(i) * w;
      col.fixed.insert(col.fixed.end(), p, p + w);
    }
  }

  void AppendColumn(int c, const Vector& v, int n, const sel_t* sel) {
    for (int j = 0; j < n; j++) AppendCell(c, v, sel ? sel[j] : j);
  }

  Schema schema_;
  std::vector<Column> cols_;
  int64_t rows_ = 0;
};

}  // namespace x100

#endif  // X100_EXEC_ROW_BUFFER_H_
