// Hash join — build/probe with the join flavors whose SQL semantics the
// paper calls out (§"NULL intricacies"): "While most operators are NULL
// oblivious, one of the exceptions were join operators. Here, intricacies
// of the SQL semantics of anti-joins added significant complexity."
//
// Flavors:
//  * kInner, kLeftOuter, kSemi
//  * kAnti           — NOT EXISTS semantics: probe rows with NULL keys
//                      vacuously survive (NULL = x is unknown, EXISTS false)
//  * kAntiNullAware  — NOT IN semantics: a NULL anywhere poisons the
//                      predicate: any NULL build key -> empty result; a
//                      NULL probe key -> row dropped.
//
// Pipeline decomposition (docs/EXECUTION.md): the build side is its own
// pipeline. JoinBuildState owns N cloned build chains, drains them with
// scheduler tasks into per-worker, per-partition row buffers — rows are
// radix-partitioned by the TOP `radix_bits` bits of the key hash as they
// arrive — then merges + hash-indexes each of the 2^radix_bits
// partitions with an independent scheduler task (no cross-partition
// synchronization; radix_bits = 0 degenerates to the single-table path).
// After the merge fan-out's barrier the table is immutable and any
// number of probe pipelines read it concurrently:
//  * JoinProbeOp  — one probe worker chain against the shared table; the
//                   physical planner clones it per pipeline worker.
//  * HashJoinOp   — the serial facade (single build chain, single probe
//                   child) with the same semantics; used by tests and
//                   directly-constructed plans.
#ifndef X100_EXEC_HASH_JOIN_H_
#define X100_EXEC_HASH_JOIN_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/operator.h"
#include "exec/row_buffer.h"
#include "storage/spill_file.h"

namespace x100 {

enum class JoinType : uint8_t {
  kInner,
  kLeftOuter,
  kSemi,
  kAnti,
  kAntiNullAware,
};

const char* JoinTypeName(JoinType t);

/// The shared, immutable-after-build side of a hash join, radix-
/// partitioned by the top `radix_bits` bits of the key hash. Built
/// exactly once per query by whichever caller reaches EnsureBuilt first;
/// concurrent callers help run the build's own scheduler tasks (drain +
/// per-partition merge, all tagged with this state) while they wait.
/// Records one "JoinBuildMerge" entry per partition merge task in the
/// query profile so merge parallelism — and partition skew — is visible
/// per-operator (replacing the old serial "JoinBuild(N)" entry).
class JoinBuildState {
 public:
  /// One radix partition of the built table: rows whose key hash has the
  /// same top `radix_bits` bits, with a private chained hash index.
  struct Partition {
    std::unique_ptr<RowBuffer> rows;
    std::vector<int64_t> buckets;  // head index per bucket, -1 empty
    std::vector<int64_t> next;     // chain (partition-local row ids)
    std::vector<uint64_t> hashes;
    uint64_t bucket_mask = 0;
    /// Charge for the merged, probe-resident partition (force-reserved:
    /// the table must be in memory to probe; spilling bounds the DRAIN
    /// phase). Released when the build state is destroyed.
    MemoryReservation mem;

    int64_t Head(uint64_t hash) const { return buckets[hash & bucket_mask]; }
  };

  /// `radix_bits` = 0 keeps the single-table path (one partition, one
  /// merge task) — the fallback for serial plans and tiny builds.
  JoinBuildState(std::vector<OperatorPtr> chains, std::vector<int> build_keys,
                 int radix_bits = 0);

  /// Runs the build pipeline if it has not run yet: N scheduler tasks
  /// drain the chains into per-worker, per-partition buffers, then
  /// 2^radix_bits merge tasks concatenate and hash-index one partition
  /// each. Safe to call from any thread; every caller observes the
  /// build's status, and callers that lose the build race help run the
  /// build's tagged tasks instead of blocking.
  Status EnsureBuilt(ExecContext* ctx);

  /// Closes any chain the build tasks did not get to (cancellation /
  /// sibling error paths). Idempotent, thread-safe.
  void CloseChains();

  const Schema& schema() const { return build_schema_; }

  // Probe-side accessors; valid only after EnsureBuilt returned OK.
  int radix_bits() const { return radix_bits_; }
  int num_partitions() const { return 1 << radix_bits_; }
  size_t PartitionOf(uint64_t hash) const {
    return RadixPartitionOf(hash, radix_bits_);
  }
  const Partition& partition(uint64_t hash) const {
    return partitions_[PartitionOf(hash)];
  }
  bool has_null_key() const { return has_null_key_; }
  const std::vector<int>& build_keys() const { return build_keys_; }

 private:
  Status Build(ExecContext* ctx);

  std::vector<OperatorPtr> chains_;
  std::vector<int> build_keys_;
  Schema build_schema_;
  int radix_bits_;

  std::mutex mu_;
  std::condition_variable built_cv_;
  enum class State { kIdle, kBuilding, kBuilt } state_ = State::kIdle;
  /// Lock-free fast path for the probe hot loop: set (release) once the
  /// build completed successfully; probes then skip mu_ entirely.
  std::atomic<bool> built_ok_{false};
  Status build_status_;
  bool chains_closed_ = false;

  std::vector<Partition> partitions_;  // 2^radix_bits, built in parallel
  bool has_null_key_ = false;  // poison for NOT IN semantics

  /// Out-of-core drain (Grace-style): when a drain worker's memory
  /// reservation fails it writes its largest radix partition (rows +
  /// hashes, one self-contained blob) to a SpillFile and continues with a
  /// fresh buffer; the partition's merge task re-reads every spilled
  /// chunk before indexing, so build and probe agree bit-for-bit on
  /// partition assignment regardless of what hit disk. `spill_mu_` guards
  /// the per-partition chunk lists during the concurrent drain.
  std::mutex spill_mu_;
  std::vector<std::vector<SpillFile>> spilled_;  // [partition][chunk]
};

using JoinBuildStatePtr = std::shared_ptr<JoinBuildState>;

/// Probe machinery against a built JoinBuildState: vectorized key hashing,
/// chain walking with output-overflow resume, and the per-flavor emit
/// rules. One instance per probing operator (it owns the output batch and
/// resume cursor), so cloned probe pipelines never share mutable state.
class JoinProber {
 public:
  void Init(const JoinBuildState* state, std::vector<int> probe_keys,
            JoinType type, const Schema* out_schema);
  Status Open(ExecContext* ctx);
  /// Pulls probe batches from `child` and emits joined output; nullptr at
  /// end-of-stream.
  Result<Batch*> Next(Operator* child, ExecContext* ctx);

 private:
  bool ProbeKeyHasNull(const Batch& probe, int i) const;
  bool KeysEqual(const Batch& probe, int probe_i, const RowBuffer& build,
                 int64_t build_row) const;
  void EmitPair(const Batch& probe, int probe_i, const RowBuffer& build,
                int64_t build_row, int out_i);
  void EmitProbeOnly(const Batch& probe, int probe_i, int out_i,
                     bool null_build_side);

  const JoinBuildState* state_ = nullptr;
  std::vector<int> probe_keys_;
  JoinType type_ = JoinType::kInner;
  const Schema* out_schema_ = nullptr;

  std::unique_ptr<Batch> out_;
  // Probe resume state (a probe batch can overflow the output vector).
  Batch* probe_batch_ = nullptr;
  int probe_pos_ = 0;        // index into the probe batch's live rows
  int64_t chain_pos_ = -1;   // current chain node (inner/outer continue)
  bool row_matched_ = false; // left outer bookkeeping
  std::vector<uint64_t> probe_hashes_;
  bool eos_ = false;
};

/// Output schema of a join: probe columns, then (inner/left-outer) build
/// columns — nullable for the padded left-outer side.
Schema JoinOutputSchema(const Schema& probe, const Schema& build,
                        JoinType type);

/// Serial hash join: owns both children; the build side still executes as
/// a scheduler task (single-chain build pipeline).
class HashJoinOp : public Operator {
 public:
  /// Keys are column indexes into the respective child schemas.
  HashJoinOp(OperatorPtr build, OperatorPtr probe,
             std::vector<int> build_keys, std::vector<int> probe_keys,
             JoinType type);
  ~HashJoinOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override {
    return std::string("HashJoin[") + JoinTypeName(type_) + "]";
  }

 private:
  OperatorPtr probe_child_;
  JoinType type_;
  Schema out_schema_;
  ExecContext* ctx_ = nullptr;
  JoinBuildStatePtr state_;
  JoinProber prober_;
};

/// One probe pipeline worker: probes the shared build table with its own
/// cloned source chain. The planner creates N of these per parallel join,
/// embedded in the worker chains of the pipeline's sink (aggregation,
/// sort, or an exchange union at the plan root).
class JoinProbeOp : public Operator {
 public:
  JoinProbeOp(OperatorPtr probe, JoinBuildStatePtr state,
              std::vector<int> probe_keys, JoinType type);
  ~JoinProbeOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override {
    return std::string("JoinProbe[") + JoinTypeName(type_) + "]";
  }

 private:
  OperatorPtr probe_child_;
  JoinBuildStatePtr state_;
  JoinType type_;
  Schema out_schema_;
  ExecContext* ctx_ = nullptr;
  JoinProber prober_;
};

}  // namespace x100

#endif  // X100_EXEC_HASH_JOIN_H_
