// Hash join — build/probe with the join flavors whose SQL semantics the
// paper calls out (§"NULL intricacies"): "While most operators are NULL
// oblivious, one of the exceptions were join operators. Here, intricacies
// of the SQL semantics of anti-joins added significant complexity."
//
// Flavors:
//  * kInner, kLeftOuter, kSemi
//  * kAnti           — NOT EXISTS semantics: probe rows with NULL keys
//                      vacuously survive (NULL = x is unknown, EXISTS false)
//  * kAntiNullAware  — NOT IN semantics: a NULL anywhere poisons the
//                      predicate: any NULL build key -> empty result; a
//                      NULL probe key -> row dropped.
//
// Pipeline decomposition (docs/EXECUTION.md): the build side is its own
// pipeline. JoinBuildState owns N cloned build chains, drains them with
// scheduler tasks into per-worker, per-partition row buffers — rows are
// radix-partitioned by the TOP `radix_bits` bits of the key hash as they
// arrive — then merges + hash-indexes each of the 2^radix_bits
// partitions with an independent scheduler task (no cross-partition
// synchronization; radix_bits = 0 degenerates to the single-table path).
// After the merge fan-out's barrier the table is immutable and any
// number of probe pipelines read it concurrently:
//  * JoinProbeOp  — one probe worker chain against the shared table; the
//                   physical planner clones it per pipeline worker.
//  * HashJoinOp   — the serial facade (single build chain, single probe
//                   child) with the same semantics; used by tests and
//                   directly-constructed plans.
//
// Partition-wise (Grace) probe, docs/EXECUTION.md §"Partition-wise
// probe": a merge task whose partition does not FIT the memory budget
// leaves that partition on disk ("deferred") instead of force-charging it
// resident. Probe rows hashing into a deferred partition are not probed;
// each prober routes them — same RadixPartitionOf bits, so build and
// probe agree bit-for-bit — into probe-side SpillFiles under its own
// memory reservation. When the LAST registered prober exhausts its probe
// child it takes over the partition-pair phase: one deferred partition at
// a time, it reloads the build side (chunks + index, force-charged as the
// pair's minimum working set), streams every prober's probe chunks back
// through the ordinary probe loop, and emits the joined rows up its own
// chain — sinks union/merge worker output anyway, so which chain carries
// the deferred rows is as immaterial as which worker steals a morsel.
// Peak memory is thereby bounded by ONE partition pair instead of the
// whole build table.
#ifndef X100_EXEC_HASH_JOIN_H_
#define X100_EXEC_HASH_JOIN_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/memory_tracker.h"
#include "common/task_scheduler.h"
#include "exec/operator.h"
#include "exec/row_buffer.h"
#include "simd/prefetch.h"
#include "storage/spill_file.h"

namespace x100 {

enum class JoinType : uint8_t {
  kInner,
  kLeftOuter,
  kSemi,
  kAnti,
  kAntiNullAware,
};

const char* JoinTypeName(JoinType t);

/// The shared, immutable-after-build side of a hash join, radix-
/// partitioned by the top `radix_bits` bits of the key hash. Built
/// exactly once per query by whichever caller reaches EnsureBuilt first;
/// concurrent callers help run the build's own scheduler tasks (drain +
/// per-partition merge, all tagged with this state) while they wait.
/// Records one "JoinBuildMerge" entry per partition merge task in the
/// query profile so merge parallelism — and partition skew — is visible
/// per-operator (replacing the old serial "JoinBuild(N)" entry).
class JoinBuildState {
 public:
  /// One radix partition of the built table: rows whose key hash has the
  /// same top `radix_bits` bits, with a private chained hash index.
  struct Partition {
    std::unique_ptr<RowBuffer> rows;
    std::vector<int64_t> buckets;  // head index per bucket, -1 empty
    std::vector<int64_t> next;     // chain (partition-local row ids)
    std::vector<uint64_t> hashes;
    uint64_t bucket_mask = 0;
    /// Charge for the merged, probe-resident partition. RESERVED (not
    /// forced) at the merge: a partition that does not fit is deferred
    /// to the partition-pair phase instead of overcommitting. Released
    /// when the build state is destroyed (or the pair completes).
    MemoryReservation mem;
    /// Grace probe: the build side of this partition stayed on disk; the
    /// probe phase routes matching rows to probe-side spill and a later
    /// partition-pair task joins the two.
    bool deferred = false;

    int64_t Head(uint64_t hash) const { return buckets[hash & bucket_mask]; }

    /// Hints the bucket head for `hash` into cache ahead of the probe.
    /// Deferred partitions have no resident index (buckets is empty) —
    /// nothing useful to prefetch there.
    void PrefetchBucket(uint64_t hash) const {
      if (!buckets.empty()) PrefetchRead(&buckets[hash & bucket_mask]);
    }
  };

  /// `radix_bits` = 0 keeps the single-table path (one partition, one
  /// merge task) — the fallback for serial plans and tiny builds.
  /// `estimated_rows` (>= 0) is the planner's scan-spine bound on the
  /// build cardinality; with `allow_radix_resize` (AUTO radix sizing),
  /// a drain observing >= kRadixResizeFactor x the estimate re-sizes the
  /// merge fan-out to RadixBitsForObserved — the tiny-build skip only
  /// sees base-table spines, and a mispredicted build (PDT-inserted
  /// rows, say) must not collapse onto one merge task / one Grace
  /// partition.
  JoinBuildState(std::vector<OperatorPtr> chains, std::vector<int> build_keys,
                 int radix_bits = 0, int64_t estimated_rows = -1,
                 bool allow_radix_resize = false);

  /// Runs the build pipeline if it has not run yet: N scheduler tasks
  /// drain the chains into per-worker, per-partition buffers, then
  /// 2^radix_bits merge tasks concatenate and hash-index one partition
  /// each. Safe to call from any thread; every caller observes the
  /// build's status, and callers that lose the build race help run the
  /// build's tagged tasks instead of blocking.
  Status EnsureBuilt(ExecContext* ctx);

  /// Closes any chain the build tasks did not get to (cancellation /
  /// sibling error paths). Idempotent, thread-safe.
  void CloseChains();

  const Schema& schema() const { return build_schema_; }

  // Probe-side accessors; valid only after EnsureBuilt returned OK.
  int radix_bits() const { return radix_bits_; }
  int num_partitions() const { return 1 << radix_bits_; }
  size_t PartitionOf(uint64_t hash) const {
    return RadixPartitionOf(hash, radix_bits_);
  }
  const Partition& partition(uint64_t hash) const {
    return partitions_[PartitionOf(hash)];
  }
  bool partition_deferred(size_t p) const { return partitions_[p].deferred; }
  bool any_deferred() const {
    return any_deferred_.load(std::memory_order_relaxed);
  }
  bool has_null_key() const { return has_null_key_; }
  const std::vector<int>& build_keys() const { return build_keys_; }

  // --- Partition-wise (Grace) probe protocol -------------------------------
  //
  // Every probing operator registers at CONSTRUCTION time (all probe
  // clones of a plan exist before any of them drains), finishes exactly
  // once when its probe child hits end-of-stream, and the LAST finisher
  // runs the partition-pair phase single-threaded — by then every other
  // prober has returned end-of-stream to its sink, so the deferred
  // partitions have exactly one owner and pairs are processed one at a
  // time (the documented memory floor).

  void RegisterProber() {
    probers_registered_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Hands a finished prober's probe-side spill chunks (per partition) to
  /// the shared state. Returns true iff this was the last registered
  /// prober — the caller then owns the partition-pair phase.
  bool FinishProber(std::vector<std::vector<SpillFile>> probe_chunks);

  /// The deferred partitions that received probe rows, in partition
  /// order. Call only as the last finisher.
  std::vector<int> DeferredPairList() const;

  /// Loads deferred partition `p` resident: merges its build spill
  /// chunks, indexes them, and force-charges the result as the pair's
  /// minimum working set. Returns the resident bytes charged. Call only
  /// as the last finisher, one partition at a time. `preloaded`, when
  /// non-null and sized like build_chunks(p), supplies the chunk blobs
  /// already read ahead (the pair prefetcher) — they are consumed in
  /// chunk order instead of re-reading the spill device.
  Result<int64_t> LoadDeferredPartition(
      int p, ExecContext* ctx,
      std::vector<std::vector<uint8_t>>* preloaded = nullptr);

  /// This pair's probe chunks (every prober's, concatenated). Valid
  /// between LoadDeferredPartition(p) and ReleaseDeferredPartition(p).
  const std::vector<SpillFile>& probe_chunks(int p) const {
    return probe_spilled_[p];
  }

  /// Partition `p`'s build-side spill chunks (read-ahead peeks at the
  /// next pair's files while the current pair probes). Safe without
  /// spill_mu_ in the pair phase: the drain barrier has long passed and
  /// the last finisher is the only thread left touching spill state.
  const std::vector<SpillFile>& build_chunks(int p) const {
    return spilled_[p];
  }

  /// Drops partition `p`'s resident build side, its reservation and its
  /// build + probe spill chunks — the pair is done, its disk space and
  /// memory return before the next pair loads.
  void ReleaseDeferredPartition(int p);

 private:
  Status Build(ExecContext* ctx);
  static void IndexPartition(Partition* part);

  std::vector<OperatorPtr> chains_;
  std::vector<int> build_keys_;
  Schema build_schema_;
  int radix_bits_;
  const int64_t estimated_rows_;
  const bool allow_radix_resize_;

  std::mutex mu_;
  std::condition_variable built_cv_;
  enum class State { kIdle, kBuilding, kBuilt } state_ = State::kIdle;
  /// Lock-free fast path for the probe hot loop: set (release) once the
  /// build completed successfully; probes then skip mu_ entirely.
  std::atomic<bool> built_ok_{false};
  Status build_status_;
  bool chains_closed_ = false;

  std::vector<Partition> partitions_;  // 2^radix_bits, built in parallel
  bool has_null_key_ = false;  // poison for NOT IN semantics
  /// Set by merge tasks (concurrently, hence atomic), read by probes.
  std::atomic<bool> any_deferred_{false};

  /// Out-of-core drain (Grace-style): when a drain worker's memory
  /// reservation fails it writes its largest radix partition (rows +
  /// hashes, one self-contained blob) to a SpillFile and continues with a
  /// fresh buffer; the partition's merge task re-reads every spilled
  /// chunk before indexing — or leaves them on disk when the partition
  /// is deferred. `spill_mu_` guards the per-partition chunk lists
  /// during the concurrent drain; `spilled_rows_` sizes the merge task's
  /// up-front reservation.
  std::mutex spill_mu_;
  std::vector<std::vector<SpillFile>> spilled_;  // [partition][chunk]
  std::vector<int64_t> spilled_rows_;            // rows per partition on disk
  std::vector<int64_t> spilled_bytes_;           // blob bytes per partition

  /// Grace probe hand-off (guarded by probe_mu_): probe-side chunks per
  /// partition, deposited by finishing probers; the counters implement
  /// the last-finisher election.
  std::mutex probe_mu_;
  std::vector<std::vector<SpillFile>> probe_spilled_;  // [partition][chunk]
  std::atomic<int> probers_registered_{0};
  int probers_finished_ = 0;
};

using JoinBuildStatePtr = std::shared_ptr<JoinBuildState>;

/// Probe machinery against a built JoinBuildState: vectorized key hashing,
/// chain walking with output-overflow resume, the per-flavor emit rules,
/// and the Grace probe-side spill + partition-pair streaming. One instance
/// per probing operator (it owns the output batch and resume cursor), so
/// cloned probe pipelines never share mutable state.
class JoinProber {
 public:
  void Init(JoinBuildState* state, std::vector<int> probe_keys,
            JoinType type, const Schema* probe_schema,
            const Schema* out_schema);
  Status Open(ExecContext* ctx);
  /// Pulls probe batches from `child` and emits joined output; nullptr at
  /// end-of-stream. When the build deferred partitions, rows routed to
  /// them surface later: the last prober to finish streams the deferred
  /// partition pairs before reporting end-of-stream.
  Result<Batch*> Next(Operator* child, ExecContext* ctx);
  /// Flushes Grace probe bookkeeping (a "JoinProbeSpill" profile entry)
  /// and releases any pair working set. Called from the owning
  /// operator's Close.
  void Close(ExecContext* ctx);

 private:
  bool ProbeKeyHasNull(const Batch& probe, int i) const;
  bool KeysEqual(const Batch& probe, int probe_i, const RowBuffer& build,
                 int64_t build_row) const;
  void EmitPair(const Batch& probe, int probe_i, const RowBuffer& build,
                int64_t build_row, int out_i);
  void EmitProbeOnly(const Batch& probe, int probe_i, int out_i,
                     bool null_build_side);

  // Grace probe-side machinery (see the header comment).
  Status DeferRow(const Batch& probe, int i, size_t partition);
  Status EnsureDeferReservation(ExecContext* ctx);
  Result<int64_t> SpillDeferredPartition(ExecContext* ctx, int victim);
  Status SpillAllDeferred(ExecContext* ctx);
  /// The probe feed: the child's stream, then — for the last finisher —
  /// synthetic batches materialized from each deferred pair's probe
  /// chunks.
  Result<Batch*> NextProbeBatch(Operator* child, ExecContext* ctx);
  Status StartPair(ExecContext* ctx);
  Status FinishPair(ExecContext* ctx);
  Result<bool> NextPairChunk(ExecContext* ctx);  // false: pair exhausted
  /// Overlap: after pair_idx_'s build is resident, read the NEXT pair's
  /// build chunks + first probe chunk on a background task so its IO
  /// hides behind this pair's probing. The bytes are charged against the
  /// buffer pool's read-ahead budget (ctx->buffers) — NOT the query
  /// memory limit, whose documented floor is one resident pair; when the
  /// charge is refused the next pair simply loads synchronously.
  void MaybePrefetchNextPair(ExecContext* ctx);
  /// Cancels + joins any in-flight pair prefetch and returns its budget
  /// charge. Safe to call at any point (Close, error unwind).
  void DropPairPrefetch();

  JoinBuildState* state_ = nullptr;
  std::vector<int> probe_keys_;
  JoinType type_ = JoinType::kInner;
  const Schema* probe_schema_ = nullptr;
  const Schema* out_schema_ = nullptr;

  std::unique_ptr<Batch> out_;
  // Probe resume state (a probe batch can overflow the output vector).
  /// Resolved dispatch level (batched hash kernels) and the derived
  /// prefetch gate — kScalar keeps the exact reference memory behavior.
  SimdLevel simd_ = SimdLevel::kScalar;
  bool prefetch_ = false;
  Batch* probe_batch_ = nullptr;
  int probe_pos_ = 0;        // index into the probe batch's live rows
  int64_t chain_pos_ = -1;   // current chain node (inner/outer continue)
  bool row_matched_ = false; // left outer bookkeeping
  std::vector<uint64_t> probe_hashes_;
  bool eos_ = false;

  // Grace probe-side state: per-partition buffers of rows routed away
  // from deferred partitions, spilled as chunks under defer_mem_.
  std::vector<std::unique_ptr<RowBuffer>> defer_rows_;
  std::vector<std::vector<SpillFile>> defer_chunks_;
  MemoryReservation defer_mem_;
  int64_t probe_spill_bytes_ = 0;
  int64_t probe_spill_chunks_ = 0;
  int64_t probe_spill_rows_ = 0;
  bool finished_ = false;    // FinishProber already ran

  // Partition-pair streaming (last finisher only).
  bool pair_mode_ = false;
  std::vector<int> pair_parts_;
  size_t pair_idx_ = 0;
  size_t pair_chunk_ = 0;
  int64_t pair_row_ = 0;
  std::unique_ptr<RowBuffer> pair_probe_rows_;  // current reloaded chunk
  std::unique_ptr<Batch> pair_batch_;
  MemoryReservation pair_mem_;
  int64_t pair_build_bytes_ = 0;
  int64_t pair_mem_hwm_ = 0;
  int64_t pair_rows_ = 0;
  int64_t pair_t0_ = 0;

  /// One in-flight read-ahead of a deferred pair's spill chunks. The
  /// TaskGroup owns the background read; the blobs are adopted by the
  /// next StartPair (build) and its first NextPairChunk (probe).
  struct PairPrefetch {
    int part = -1;
    std::unique_ptr<TaskGroup> tasks;
    std::vector<std::vector<uint8_t>> build_blobs;
    std::vector<uint8_t> probe_blob;
    bool has_probe_blob = false;
    int64_t charged_bytes = 0;
    BufferManager* buffers = nullptr;  // budget to refund on release
  };
  PairPrefetch next_pair_;
  std::vector<uint8_t> adopted_probe_blob_;  // chunk 0, read ahead
  bool has_adopted_probe_blob_ = false;
  int64_t pair_prefetch_issued_ = 0;
  int64_t pair_prefetch_adopted_ = 0;
};

/// Output schema of a join: probe columns, then (inner/left-outer) build
/// columns — nullable for the padded left-outer side.
Schema JoinOutputSchema(const Schema& probe, const Schema& build,
                        JoinType type);

/// Serial hash join: owns both children; the build side still executes as
/// a scheduler task (single-chain build pipeline).
class HashJoinOp : public Operator {
 public:
  /// Keys are column indexes into the respective child schemas.
  HashJoinOp(OperatorPtr build, OperatorPtr probe,
             std::vector<int> build_keys, std::vector<int> probe_keys,
             JoinType type);
  ~HashJoinOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override {
    return std::string("HashJoin[") + JoinTypeName(type_) + "]";
  }

 private:
  OperatorPtr probe_child_;
  JoinType type_;
  Schema out_schema_;
  ExecContext* ctx_ = nullptr;
  JoinBuildStatePtr state_;
  JoinProber prober_;
};

/// One probe pipeline worker: probes the shared build table with its own
/// cloned source chain. The planner creates N of these per parallel join,
/// embedded in the worker chains of the pipeline's sink (aggregation,
/// sort, or an exchange union at the plan root).
class JoinProbeOp : public Operator {
 public:
  JoinProbeOp(OperatorPtr probe, JoinBuildStatePtr state,
              std::vector<int> probe_keys, JoinType type);
  ~JoinProbeOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override {
    return std::string("JoinProbe[") + JoinTypeName(type_) + "]";
  }

 private:
  OperatorPtr probe_child_;
  JoinBuildStatePtr state_;
  JoinType type_;
  Schema out_schema_;
  ExecContext* ctx_ = nullptr;
  JoinProber prober_;
};

}  // namespace x100

#endif  // X100_EXEC_HASH_JOIN_H_
