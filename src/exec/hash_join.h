// Hash join — build/probe with the join flavors whose SQL semantics the
// paper calls out (§"NULL intricacies"): "While most operators are NULL
// oblivious, one of the exceptions were join operators. Here, intricacies
// of the SQL semantics of anti-joins added significant complexity."
//
// Flavors:
//  * kInner, kLeftOuter, kSemi
//  * kAnti           — NOT EXISTS semantics: probe rows with NULL keys
//                      vacuously survive (NULL = x is unknown, EXISTS false)
//  * kAntiNullAware  — NOT IN semantics: a NULL anywhere poisons the
//                      predicate: any NULL build key -> empty result; a
//                      NULL probe key -> row dropped.
//
// Pipeline decomposition (docs/EXECUTION.md): the build side is its own
// pipeline. JoinBuildState owns N cloned build chains, drains them with
// scheduler tasks into per-worker row buffers, and merges + indexes them
// at the TaskGroup barrier — after which the table is immutable and any
// number of probe pipelines read it concurrently:
//  * JoinProbeOp  — one probe worker chain against the shared table; the
//                   physical planner clones it per pipeline worker.
//  * HashJoinOp   — the serial facade (single build chain, single probe
//                   child) with the same semantics; used by tests and
//                   directly-constructed plans.
#ifndef X100_EXEC_HASH_JOIN_H_
#define X100_EXEC_HASH_JOIN_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/operator.h"
#include "exec/row_buffer.h"

namespace x100 {

enum class JoinType : uint8_t {
  kInner,
  kLeftOuter,
  kSemi,
  kAnti,
  kAntiNullAware,
};

const char* JoinTypeName(JoinType t);

/// The shared, immutable-after-build side of a hash join. Built exactly
/// once per query by whichever caller reaches EnsureBuilt first (the
/// planner's pipeline sinks pre-build; racing probe workers help the
/// scheduler while they wait). Records a synthetic "JoinBuild(N)" entry
/// in the query profile so the build phase is visible per-operator.
class JoinBuildState {
 public:
  JoinBuildState(std::vector<OperatorPtr> chains,
                 std::vector<int> build_keys);

  /// Runs the build pipeline if it has not run yet: N scheduler tasks
  /// drain the chains into per-worker buffers, merged + hash-indexed at
  /// the barrier. Safe to call from any thread; every caller observes the
  /// build's status.
  Status EnsureBuilt(ExecContext* ctx);

  /// Closes any chain the build tasks did not get to (cancellation /
  /// sibling error paths). Idempotent, thread-safe.
  void CloseChains();

  const Schema& schema() const { return build_schema_; }

  // Probe-side accessors; valid only after EnsureBuilt returned OK.
  const RowBuffer& rows() const { return *rows_; }
  int64_t BucketHead(uint64_t hash) const {
    return buckets_[hash & bucket_mask_];
  }
  int64_t NextRow(int64_t node) const { return next_[node]; }
  uint64_t HashAt(int64_t node) const { return hashes_[node]; }
  bool has_null_key() const { return has_null_key_; }
  const std::vector<int>& build_keys() const { return build_keys_; }

 private:
  Status Build(ExecContext* ctx);
  uint64_t HashRow(int64_t row) const;

  std::vector<OperatorPtr> chains_;
  std::vector<int> build_keys_;
  Schema build_schema_;

  std::mutex mu_;
  std::condition_variable built_cv_;
  enum class State { kIdle, kBuilding, kBuilt } state_ = State::kIdle;
  /// Lock-free fast path for the probe hot loop: set (release) once the
  /// build completed successfully; probes then skip mu_ entirely.
  std::atomic<bool> built_ok_{false};
  Status build_status_;
  bool chains_closed_ = false;

  std::unique_ptr<RowBuffer> rows_;
  std::vector<int64_t> buckets_;  // head index per bucket, -1 empty
  std::vector<int64_t> next_;     // chain
  std::vector<uint64_t> hashes_;
  uint64_t bucket_mask_ = 0;
  bool has_null_key_ = false;  // poison for NOT IN semantics
};

using JoinBuildStatePtr = std::shared_ptr<JoinBuildState>;

/// Probe machinery against a built JoinBuildState: vectorized key hashing,
/// chain walking with output-overflow resume, and the per-flavor emit
/// rules. One instance per probing operator (it owns the output batch and
/// resume cursor), so cloned probe pipelines never share mutable state.
class JoinProber {
 public:
  void Init(const JoinBuildState* state, std::vector<int> probe_keys,
            JoinType type, const Schema* out_schema);
  Status Open(ExecContext* ctx);
  /// Pulls probe batches from `child` and emits joined output; nullptr at
  /// end-of-stream.
  Result<Batch*> Next(Operator* child, ExecContext* ctx);

 private:
  bool ProbeKeyHasNull(const Batch& probe, int i) const;
  bool KeysEqual(const Batch& probe, int probe_i, int64_t build_row) const;
  void EmitPair(const Batch& probe, int probe_i, int64_t build_row,
                int out_i);
  void EmitProbeOnly(const Batch& probe, int probe_i, int out_i,
                     bool null_build_side);

  const JoinBuildState* state_ = nullptr;
  std::vector<int> probe_keys_;
  JoinType type_ = JoinType::kInner;
  const Schema* out_schema_ = nullptr;

  std::unique_ptr<Batch> out_;
  // Probe resume state (a probe batch can overflow the output vector).
  Batch* probe_batch_ = nullptr;
  int probe_pos_ = 0;        // index into the probe batch's live rows
  int64_t chain_pos_ = -1;   // current chain node (inner/outer continue)
  bool row_matched_ = false; // left outer bookkeeping
  std::vector<uint64_t> probe_hashes_;
  bool eos_ = false;
};

/// Output schema of a join: probe columns, then (inner/left-outer) build
/// columns — nullable for the padded left-outer side.
Schema JoinOutputSchema(const Schema& probe, const Schema& build,
                        JoinType type);

/// Serial hash join: owns both children; the build side still executes as
/// a scheduler task (single-chain build pipeline).
class HashJoinOp : public Operator {
 public:
  /// Keys are column indexes into the respective child schemas.
  HashJoinOp(OperatorPtr build, OperatorPtr probe,
             std::vector<int> build_keys, std::vector<int> probe_keys,
             JoinType type);
  ~HashJoinOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override {
    return std::string("HashJoin[") + JoinTypeName(type_) + "]";
  }

 private:
  OperatorPtr probe_child_;
  JoinType type_;
  Schema out_schema_;
  ExecContext* ctx_ = nullptr;
  JoinBuildStatePtr state_;
  JoinProber prober_;
};

/// One probe pipeline worker: probes the shared build table with its own
/// cloned source chain. The planner creates N of these per parallel join,
/// embedded in the worker chains of the pipeline's sink (aggregation,
/// sort, or an exchange union at the plan root).
class JoinProbeOp : public Operator {
 public:
  JoinProbeOp(OperatorPtr probe, JoinBuildStatePtr state,
              std::vector<int> probe_keys, JoinType type);
  ~JoinProbeOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override {
    return std::string("JoinProbe[") + JoinTypeName(type_) + "]";
  }

 private:
  OperatorPtr probe_child_;
  JoinBuildStatePtr state_;
  JoinType type_;
  Schema out_schema_;
  ExecContext* ctx_ = nullptr;
  JoinProber prober_;
};

}  // namespace x100

#endif  // X100_EXEC_HASH_JOIN_H_
