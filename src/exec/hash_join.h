// HashJoinOp: build/probe hash join with the join flavors whose SQL
// semantics the paper calls out (§"NULL intricacies"): "While most
// operators are NULL oblivious, one of the exceptions were join operators.
// Here, intricacies of the SQL semantics of anti-joins added significant
// complexity."
//
// Flavors:
//  * kInner, kLeftOuter, kSemi
//  * kAnti           — NOT EXISTS semantics: probe rows with NULL keys
//                      vacuously survive (NULL = x is unknown, EXISTS false)
//  * kAntiNullAware  — NOT IN semantics: a NULL anywhere poisons the
//                      predicate: any NULL build key -> empty result; a
//                      NULL probe key -> row dropped.
#ifndef X100_EXEC_HASH_JOIN_H_
#define X100_EXEC_HASH_JOIN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/row_buffer.h"

namespace x100 {

enum class JoinType : uint8_t {
  kInner,
  kLeftOuter,
  kSemi,
  kAnti,
  kAntiNullAware,
};

const char* JoinTypeName(JoinType t);

class HashJoinOp : public Operator {
 public:
  /// Keys are column indexes into the respective child schemas. Output:
  /// probe columns then (for inner/left-outer) build columns.
  HashJoinOp(OperatorPtr build, OperatorPtr probe,
             std::vector<int> build_keys, std::vector<int> probe_keys,
             JoinType type);
  ~HashJoinOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override {
    return std::string("HashJoin[") + JoinTypeName(type_) + "]";
  }

 private:
  Status BuildSide();
  uint64_t HashBuildRow(int64_t row) const;
  bool KeysEqual(const Batch& probe, int probe_i, int64_t build_row) const;
  bool ProbeKeyHasNull(const Batch& probe, int i) const;
  void EmitPair(const Batch& probe, int probe_i, int64_t build_row,
                int out_i);
  void EmitProbeOnly(const Batch& probe, int probe_i, int out_i,
                     bool null_build_side);

  OperatorPtr build_child_;
  OperatorPtr probe_child_;
  std::vector<int> build_keys_;
  std::vector<int> probe_keys_;
  JoinType type_;
  Schema out_schema_;
  ExecContext* ctx_ = nullptr;

  std::unique_ptr<RowBuffer> build_rows_;
  std::vector<int64_t> buckets_;  // head index per bucket, -1 empty
  std::vector<int64_t> next_;     // chain
  std::vector<uint64_t> build_hashes_;
  uint64_t bucket_mask_ = 0;
  bool build_has_null_key_ = false;
  bool built_ = false;

  std::unique_ptr<Batch> out_;
  // Probe resume state (a probe batch can overflow the output vector).
  Batch* probe_batch_ = nullptr;
  int probe_pos_ = 0;        // index into the probe batch's live rows
  int64_t chain_pos_ = -1;   // current chain node (inner/outer continue)
  bool row_matched_ = false; // left outer bookkeeping
  std::vector<uint64_t> probe_hashes_;
  bool eos_ = false;
};

}  // namespace x100

#endif  // X100_EXEC_HASH_JOIN_H_
