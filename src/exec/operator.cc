#include "exec/operator.h"

#include <chrono>

namespace x100 {

namespace {
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The operator currently inside a public Open/Next on this thread. A
// child's public entry points charge their elapsed time to the caller's
// child_ns, which is how exclusive (self) time is derived without the
// base class knowing the tree shape. Pipeline worker chains each run on
// one pool thread, so nesting stays thread-local; an operator whose
// children run on *other* threads (exchange consumer) accrues no
// child_ns and its exclusive time includes the cross-thread wait.
thread_local Operator* g_profiling_caller = nullptr;
}  // namespace

Status Operator::Open(ExecContext* ctx) {
  profile_ctx_ = ctx;
  prof_flushed_ = false;
  Operator* caller = g_profiling_caller;
  g_profiling_caller = this;
  const int64_t t0 = NowNs();
  Status s = OpenImpl(ctx);
  const int64_t elapsed = NowNs() - t0;
  g_profiling_caller = caller;
  prof_.open_ns += elapsed;
  if (caller != nullptr) caller->prof_.child_ns += elapsed;
  return s;
}

Result<Batch*> Operator::Next() {
  Operator* caller = g_profiling_caller;
  g_profiling_caller = this;
  const int64_t t0 = NowNs();
  auto r = NextImpl();
  const int64_t elapsed = NowNs() - t0;
  g_profiling_caller = caller;
  prof_.next_ns += elapsed;
  if (caller != nullptr) caller->prof_.child_ns += elapsed;
  if (r.ok() && *r != nullptr) {
    prof_.batches++;
    prof_.rows += (*r)->ActiveRows();
  }
  return r;
}

void Operator::Close() {
  CloseImpl();
  if (profile_ctx_ != nullptr && !prof_flushed_) {
    prof_flushed_ = true;
    prof_.op = name();
    profile_ctx_->RecordOperator(prof_);
  }
}

}  // namespace x100
