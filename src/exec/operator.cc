#include "exec/operator.h"

#include <chrono>

namespace x100 {

namespace {
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Status Operator::Open(ExecContext* ctx) {
  profile_ctx_ = ctx;
  prof_flushed_ = false;
  const int64_t t0 = NowNs();
  Status s = OpenImpl(ctx);
  prof_.open_ns += NowNs() - t0;
  return s;
}

Result<Batch*> Operator::Next() {
  const int64_t t0 = NowNs();
  auto r = NextImpl();
  prof_.next_ns += NowNs() - t0;
  if (r.ok() && *r != nullptr) {
    prof_.batches++;
    prof_.rows += (*r)->ActiveRows();
  }
  return r;
}

void Operator::Close() {
  CloseImpl();
  if (profile_ctx_ != nullptr && !prof_flushed_) {
    prof_flushed_ = true;
    prof_.op = name();
    profile_ctx_->RecordOperator(prof_);
  }
}

}  // namespace x100
