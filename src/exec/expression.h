// ExprProgram: compiles a bound expression tree into a flat sequence of
// primitive invocations — the X100 execution model where interpretation
// overhead is paid per vector, not per tuple.
//
// NULL handling implements the paper's two-column scheme: primitives run
// NULL-obliviously over safe values; a separate indicator pass ORs the
// input indicators into the output indicator ("operations on NULLable
// inputs are rewritten into equivalent operations on two standard
// relational inputs").
#ifndef X100_EXEC_EXPRESSION_H_
#define X100_EXEC_EXPRESSION_H_

#include <memory>
#include <vector>

#include "exec/expr.h"
#include "primitives/primitive_registry.h"
#include "vector/batch.h"

namespace x100 {

class ExprProgram {
 public:
  /// Compiles `bound` (a tree produced by BindExpr against the schema of
  /// the batches that will be evaluated). vector_size bounds batch size.
  /// `simd` selects registry kernel variants at that dispatch level
  /// (lookups fall back to the scalar kernel per primitive) and the
  /// vectorized NULL-indicator combination.
  static Result<std::unique_ptr<ExprProgram>> Compile(
      const ExprPtr& bound, int vector_size,
      SimdLevel simd = SimdLevel::kScalar);

  /// Evaluates over the batch's live rows. The result vector is owned by
  /// the program and valid until the next Eval call. Its null indicator
  /// (has_nulls) reflects the strict NULL propagation of the inputs.
  Result<const Vector*> Eval(Batch& batch);

  TypeId out_type() const { return out_type_; }
  bool nullable() const { return nullable_; }

 private:
  struct ArgRef {
    enum class Src : uint8_t { kInputCol, kReg, kConst };
    Src src;
    int index = 0;  // column index / register index / const index
  };
  struct Step {
    MapFn fn = nullptr;
    std::vector<ArgRef> args;
    int out_reg = 0;
    TypeId out_type;
    std::vector<ArgRef> null_sources;  // nullable args to OR into out nulls
    bool is_isnull = false;            // special: materialize an indicator
    bool negate_isnull = false;
  };
  struct ConstSlot {
    Value value;
    // Typed storage the kernels point at.
    int64_t i64 = 0;
    double f64 = 0;
    StrRef str;
    std::string str_storage;
    const void* ptr = nullptr;
  };

  Result<ArgRef> CompileNode(const ExprPtr& e);
  const void* ResolveData(const ArgRef& a, Batch& batch) const;
  const uint8_t* ResolveNulls(const ArgRef& a, Batch& batch) const;

  int vector_size_ = 0;
  SimdLevel simd_ = SimdLevel::kScalar;
  TypeId out_type_ = TypeId::kI64;
  bool nullable_ = false;
  std::vector<Step> steps_;
  std::vector<std::unique_ptr<Vector>> regs_;
  std::vector<std::unique_ptr<ConstSlot>> consts_;
  ArgRef result_;
  bool result_nullable_ = false;
  // Scratch indicator for inputs' ORed nulls on the final result when the
  // result is a plain column reference.
  std::unique_ptr<Vector> passthrough_;
};

}  // namespace x100

#endif  // X100_EXEC_EXPRESSION_H_
