#include "exec/select_project.h"

#include <cstring>

#include "simd/simd_kernels.h"

namespace x100 {

SelectOp::SelectOp(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status SelectOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(child_->Open(ctx));
  ExprPtr bound;
  X100_ASSIGN_OR_RETURN(bound,
                        BindExpr(predicate_, child_->output_schema()));
  if (bound->type != TypeId::kBool) {
    return Status::InvalidArgument("predicate must be boolean: " +
                                   bound->ToString());
  }
  auto prog = ExprProgram::Compile(bound, ctx->vector_size, ctx->simd);
  X100_RETURN_IF_ERROR(prog.status());
  program_ = std::move(prog).value();
  return Status::OK();
}

Result<Batch*> SelectOp::NextImpl() {
  while (true) {
    X100_RETURN_IF_ERROR(ctx_->CheckCancel());
    Batch* in;
    X100_ASSIGN_OR_RETURN(in, child_->Next());
    if (in == nullptr) return nullptr;
    const Vector* pred;
    X100_ASSIGN_OR_RETURN(pred, program_->Eval(*in));
    const uint8_t* val = pred->Data<uint8_t>();
    const uint8_t* nulls = pred->has_nulls() ? pred->nulls() : nullptr;
    // Refine the batch's selection vector in place.
    const int n = in->ActiveRows();
    sel_t* sel = in->MutableSel();
    int k = 0;
    if (in->has_sel()) {
      const sel_t* cur = in->sel();
      for (int j = 0; j < n; j++) {
        const int i = cur[j];
        sel[k] = i;
        k += (val[i] && (!nulls || !nulls[i])) ? 1 : 0;
      }
    } else if (nulls != nullptr) {
      k = simd::CompactTrueNotNull(n, val, nulls, sel, ctx_->simd);
    } else {
      k = simd::CompactTrue(n, val, sel, ctx_->simd);
    }
    in->SetSelCount(k);
    if (k > 0) return in;
    // Fully filtered batch: pull the next one.
  }
}

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ProjectItem> items)
    : child_(std::move(child)), items_(std::move(items)) {
  // Bind at construction so output_schema() is available to parent plan
  // nodes before Open.
  for (const ProjectItem& item : items_) {
    auto bound = BindExpr(item.expr, child_->output_schema());
    if (!bound.ok()) {
      init_status_ = bound.status();
      return;
    }
    out_schema_.AddField(
        Field(item.name, (*bound)->type, (*bound)->nullable));
    bound_.push_back(std::move(bound).value());
  }
}

Status ProjectOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(init_status_);
  X100_RETURN_IF_ERROR(child_->Open(ctx));
  programs_.clear();
  for (const ExprPtr& bound : bound_) {
    auto prog = ExprProgram::Compile(bound, ctx->vector_size, ctx->simd);
    X100_RETURN_IF_ERROR(prog.status());
    programs_.push_back(std::move(prog).value());
  }
  out_ = std::make_unique<Batch>(out_schema_, ctx->vector_size);
  return Status::OK();
}

Result<Batch*> ProjectOp::NextImpl() {
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  Batch* in;
  X100_ASSIGN_OR_RETURN(in, child_->Next());
  if (in == nullptr) return nullptr;
  out_->Reset();
  const int rows = in->rows();
  for (size_t p = 0; p < programs_.size(); p++) {
    const Vector* res;
    X100_ASSIGN_OR_RETURN(res, programs_[p]->Eval(*in));
    Vector* dst = out_->column(static_cast<int>(p));
    // Copy values positionally (the selection vector stays valid). Strings
    // share the evaluator's heap bytes under the batch-lifetime contract.
    if (dst->type() == TypeId::kStr) {
      std::memcpy(dst->Data<StrRef>(), res->Data<StrRef>(),
                  static_cast<size_t>(rows) * sizeof(StrRef));
    } else {
      std::memcpy(dst->RawData(), res->RawData(),
                  static_cast<size_t>(rows) * TypeWidth(dst->type()));
    }
    if (res->has_nulls()) {
      std::memcpy(dst->MutableNulls(), res->nulls(), rows);
    }
  }
  out_->set_rows(rows);
  if (in->has_sel()) {
    std::memcpy(out_->MutableSel(), in->sel(),
                static_cast<size_t>(in->ActiveRows()) * sizeof(sel_t));
    out_->SetSelCount(in->ActiveRows());
  }
  return out_.get();
}

Result<QueryResult> CollectRows(Operator* op, ExecContext* ctx) {
  X100_RETURN_IF_ERROR(op->Open(ctx));
  QueryResult result;
  result.schema = op->output_schema();
  while (true) {
    auto batch = op->Next();
    if (!batch.ok()) {
      op->Close();
      return batch.status();
    }
    if (*batch == nullptr) break;
    Batch* b = *batch;
    const int n = b->ActiveRows();
    const sel_t* sel = b->sel();
    result.batches++;
    for (int j = 0; j < n; j++) {
      const int i = sel ? sel[j] : j;
      std::vector<Value> row;
      row.reserve(b->num_columns());
      for (int c = 0; c < b->num_columns(); c++) {
        const Vector* v = b->column(c);
        if (v->IsNull(i)) {
          row.push_back(Value::Null(v->type()));
          continue;
        }
        switch (v->type()) {
          case TypeId::kBool:
            row.push_back(Value::Bool(v->Data<uint8_t>()[i]));
            break;
          case TypeId::kI8:
            row.push_back(Value::I8(v->Data<int8_t>()[i]));
            break;
          case TypeId::kI16:
            row.push_back(Value::I16(v->Data<int16_t>()[i]));
            break;
          case TypeId::kI32:
            row.push_back(Value::I32(v->Data<int32_t>()[i]));
            break;
          case TypeId::kDate:
            row.push_back(Value::Date(v->Data<int32_t>()[i]));
            break;
          case TypeId::kI64:
            row.push_back(Value::I64(v->Data<int64_t>()[i]));
            break;
          case TypeId::kF64:
            row.push_back(Value::F64(v->Data<double>()[i]));
            break;
          case TypeId::kStr:
            row.push_back(Value::Str(v->Data<StrRef>()[i].ToString()));
            break;
        }
      }
      result.rows.push_back(std::move(row));
    }
  }
  op->Close();
  return result;
}

}  // namespace x100
