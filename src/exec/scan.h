// ScanOp: vectorized table scan over a TableView (base image + PDT stack),
// with MinMax pushdown, optional cooperative-scan scheduling and optional
// group partitioning (the parallelizer assigns disjoint group subsets to
// Xchg workers).
#ifndef X100_EXEC_SCAN_H_
#define X100_EXEC_SCAN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "pdt/view.h"
#include "storage/buffer_manager.h"
#include "storage/coop_scan.h"
#include "storage/morsel.h"
#include "storage/table.h"

namespace x100 {

/// A pushed-down range predicate used only for group skipping.
struct ScanPredicate {
  int table_col;
  RangeOp op;
  Value value;
};

struct ScanOptions {
  /// Columns of the base table to produce, in output order.
  std::vector<int> columns;
  /// MinMax pushdown predicates (IO elision only; exact filtering is the
  /// SelectOp's job).
  std::vector<ScanPredicate> predicates;
  /// Cooperative scan scheduler; nullptr = sequential group order.
  ScanScheduler* scheduler = nullptr;
  /// Morsel-driven parallel scan: all producer clones of one logical scan
  /// share a MorselSource and pull block groups dynamically. The clone
  /// that wins ClaimTail() merges the PDT tail inserts. Takes precedence
  /// over `scheduler`.
  MorselSourcePtr morsels;
  /// When use_subset is set, scan exactly `group_subset` (static parallel
  /// scan partitions; may be empty for a worker with no groups). The
  /// worker with include_tail=true also merges tail inserts.
  bool use_subset = false;
  std::vector<int> group_subset;
  bool include_tail = true;
};

class ScanOp : public Operator {
 public:
  /// `pdt_owner` keeps the view's PDT layers alive for the scan duration
  /// (pass {} for views over plain tables).
  ScanOp(TableView view, std::shared_ptr<const Pdt> pdt_owner,
         BufferManager* buffers, ScanOptions opts);
  ~ScanOp() override { CloseImpl(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override { return "Scan"; }

  /// Groups skipped by MinMax pushdown (exposed for tests/benches).
  int64_t groups_skipped() const { return groups_skipped_; }

 private:
  // One visible-row source inside the current group.
  struct Slot {
    bool is_insert = false;
    int64_t local = 0;  // group-local stable index (stable rows)
    const InsertedRow* row = nullptr;
    std::vector<std::pair<int, const Value*>> mods;
  };
  struct Segment {
    bool is_run = false;
    int64_t a = 0, b = 0;  // group-local stable range (runs)
    Slot slot;             // single visible slot otherwise
  };

  Status LoadGroup(int g);      // decode columns + build merge segments
  Status LoadTail();            // inserts anchored past the last stable row
  bool NextGroupId(int* g);     // scheduler/subset iteration
  /// The group this scan expects to load `ahead` steps from now (0 =
  /// next). -1 if unknowable, e.g. cooperative scheduling where the
  /// policy decides at claim time. May run past the table end — callers
  /// bounds-check.
  int PeekNextGroupId(int ahead) const;
  /// Read-ahead: issue background reads for the peeked upcoming groups'
  /// block regions (PAX) or scanned-column runs (DSM) so their IO
  /// overlaps this group's decode+merge. No-op without ctx->buffers or
  /// when the pool's prefetch budget is 0 — directly-built test plans
  /// keep exact synchronous IO counts.
  void PrefetchNextGroup();
  void FillFromRun(int64_t a, int64_t b, int count, int out_base);
  Status FillFromSlot(const Slot& slot, int out_base);
  bool GroupCanMatch(int g) const;

  TableView view_;
  std::shared_ptr<const Pdt> pdt_owner_;
  BufferManager* buffers_;
  ScanOptions opts_;
  Schema out_schema_;
  std::unique_ptr<TableReader> reader_;
  ExecContext* ctx_ = nullptr;

  std::unique_ptr<Batch> out_;
  // Decoded group data per selected column.
  struct GroupCol {
    std::vector<uint8_t> data;
    std::vector<uint8_t> nulls;
    bool has_nulls = false;
    std::unique_ptr<StringHeap> heap;
  };
  std::vector<GroupCol> group_cols_;
  std::vector<Segment> segments_;
  size_t seg_idx_ = 0;
  int64_t seg_off_ = 0;

  int scheduler_qid_ = -1;
  size_t subset_idx_ = 0;
  int seq_next_group_ = 0;
  bool tail_done_ = false;
  bool eos_ = false;
  bool opened_ = false;
  int64_t groups_skipped_ = 0;
};

}  // namespace x100

#endif  // X100_EXEC_SCAN_H_
