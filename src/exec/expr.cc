#include "exec/expr.h"

#include <algorithm>

namespace x100 {

ExprPtr Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kColRef;
  e->name = std::move(name);
  return e;
}

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kConst;
  e->constant = std::move(v);
  return e;
}

ExprPtr Call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kCall;
  e->fn = std::move(fn);
  e->args = std::move(args);
  return e;
}

ExprPtr CloneExpr(const ExprPtr& e) {
  auto c = std::make_shared<Expr>(*e);
  for (auto& a : c->args) a = CloneExpr(a);
  return c;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColRef:
      return bound ? name + "#" + std::to_string(col) : name;
    case Kind::kConst:
      return constant.ToString();
    case Kind::kCall: {
      std::string s = fn + "(";
      for (size_t i = 0; i < args.size(); i++) {
        if (i) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

namespace {

// Numeric promotion lattice used by the binder.
int NumericRank(TypeId t) {
  switch (t) {
    case TypeId::kI8: return 1;
    case TypeId::kI16: return 2;
    case TypeId::kI32: return 3;
    case TypeId::kDate: return 3;  // int32 domain
    case TypeId::kI64: return 4;
    case TypeId::kF64: return 5;
    default: return 0;
  }
}

TypeId Promote(TypeId a, TypeId b) {
  // Date dominates same-width ints so date arithmetic stays in kernels
  // registered for (date, date).
  if (a == TypeId::kDate || b == TypeId::kDate) {
    if (NumericRank(a) <= 3 && NumericRank(b) <= 3) return TypeId::kDate;
  }
  return NumericRank(a) >= NumericRank(b) ? a : b;
}

Result<Value> CoerceValue(const Value& v, TypeId to) {
  if (v.is_null()) return Value::Null(to);
  if (v.type() == to) return v;
  switch (to) {
    case TypeId::kI8: return Value::I8(static_cast<int8_t>(v.AsI64()));
    case TypeId::kI16: return Value::I16(static_cast<int16_t>(v.AsI64()));
    case TypeId::kI32: return Value::I32(static_cast<int32_t>(v.AsI64()));
    case TypeId::kI64:
      if (v.type() == TypeId::kF64) {
        return Value::I64(static_cast<int64_t>(v.AsF64()));
      }
      return Value::I64(v.AsI64());
    case TypeId::kF64: return Value::F64(v.AsF64());
    case TypeId::kDate: return Value::Date(static_cast<int32_t>(v.AsI64()));
    case TypeId::kBool: return Value::Bool(v.AsBool());
    default:
      return Status::InvalidArgument("cannot coerce " + v.ToString() +
                                     " to " + TypeName(to));
  }
}

/// Wraps `e` in a cast call to `to` (constants are re-typed in place).
Result<ExprPtr> CastTo(ExprPtr e, TypeId to) {
  if (e->type == to) return e;
  if (e->kind == Expr::Kind::kConst) {
    Value coerced;
    X100_ASSIGN_OR_RETURN(coerced, CoerceValue(e->constant, to));
    ExprPtr c = Lit(std::move(coerced));
    c->type = to;
    c->nullable = e->nullable;
    c->bound = true;
    return c;
  }
  if ((e->type == TypeId::kDate && to == TypeId::kI32) ||
      (e->type == TypeId::kI32 && to == TypeId::kDate)) {
    // Same physical representation: re-type without a kernel.
    ExprPtr c = CloneExpr(e);
    c->type = to;
    return c;
  }
  ExprPtr cast = Call(std::string("cast_") + TypeName(to), {e});
  cast->type = to;
  cast->nullable = e->nullable;
  cast->bound = true;
  return cast;
}

bool IsComparison(const std::string& fn) {
  return fn == "eq" || fn == "ne" || fn == "lt" || fn == "le" || fn == "gt" ||
         fn == "ge";
}

bool IsArith(const std::string& fn) {
  return fn == "add" || fn == "sub" || fn == "mul" || fn == "div" ||
         fn == "mod" || fn == "add_unchecked" || fn == "sub_unchecked" ||
         fn == "mul_unchecked" || fn == "div_unchecked";
}

}  // namespace

Result<ExprPtr> BindExpr(const ExprPtr& in, const Schema& schema) {
  ExprPtr e = std::make_shared<Expr>(*in);
  switch (e->kind) {
    case Expr::Kind::kColRef: {
      const int idx = schema.FindField(e->name);
      if (idx < 0) {
        return Status::NotFound("column not found: " + e->name);
      }
      e->col = idx;
      e->type = schema.field(idx).type;
      e->nullable = schema.field(idx).nullable;
      e->bound = true;
      return e;
    }
    case Expr::Kind::kConst:
      e->type = e->constant.type();
      e->nullable = e->constant.is_null();
      e->bound = true;
      return e;
    case Expr::Kind::kCall:
      break;
  }

  e->args.clear();
  for (const ExprPtr& a : in->args) {
    ExprPtr bound;
    X100_ASSIGN_OR_RETURN(bound, BindExpr(a, schema));
    e->args.push_back(std::move(bound));
  }
  e->nullable = false;
  for (const ExprPtr& a : e->args) e->nullable |= a->nullable;

  const std::string& fn = e->fn;
  auto arg_t = [&](int i) { return e->args[i]->type; };

  if (IsArith(fn) || IsComparison(fn)) {
    if (e->args.size() != 2) {
      return Status::InvalidArgument(fn + " expects 2 arguments");
    }
    TypeId common;
    if (arg_t(0) == TypeId::kStr || arg_t(1) == TypeId::kStr) {
      if (arg_t(0) != TypeId::kStr || arg_t(1) != TypeId::kStr ||
          !IsComparison(fn)) {
        return Status::InvalidArgument("type mismatch in " + fn);
      }
      common = TypeId::kStr;
    } else if (arg_t(0) == TypeId::kBool || arg_t(1) == TypeId::kBool) {
      if (arg_t(0) != arg_t(1) || !IsComparison(fn)) {
        return Status::InvalidArgument("type mismatch in " + fn);
      }
      common = TypeId::kBool;
    } else {
      common = Promote(arg_t(0), arg_t(1));
      // Division promotes small ints to at least i32 kernels.
      if (common == TypeId::kI8 || common == TypeId::kI16) {
        common = TypeId::kI32;
      }
    }
    X100_ASSIGN_OR_RETURN(e->args[0], CastTo(e->args[0], common));
    X100_ASSIGN_OR_RETURN(e->args[1], CastTo(e->args[1], common));
    e->type = IsComparison(fn) ? TypeId::kBool : common;
  } else if (fn == "and" || fn == "or" || fn == "xor") {
    if (e->args.size() != 2 || arg_t(0) != TypeId::kBool ||
        arg_t(1) != TypeId::kBool) {
      return Status::InvalidArgument(fn + " expects boolean arguments");
    }
    e->type = TypeId::kBool;
  } else if (fn == "not") {
    if (e->args.size() != 1 || arg_t(0) != TypeId::kBool) {
      return Status::InvalidArgument("not expects one boolean argument");
    }
    e->type = TypeId::kBool;
  } else if (fn == "neg" || fn == "abs") {
    e->type = arg_t(0);
  } else if (fn == "ifthenelse") {
    if (e->args.size() != 3 || arg_t(0) != TypeId::kBool) {
      return Status::InvalidArgument("ifthenelse(cond, a, b) expects bool cond");
    }
    const TypeId common = Promote(arg_t(1), arg_t(2));
    if (arg_t(1) == TypeId::kStr || arg_t(2) == TypeId::kStr) {
      if (arg_t(1) != arg_t(2)) {
        return Status::InvalidArgument("ifthenelse branch type mismatch");
      }
      e->type = TypeId::kStr;
    } else {
      X100_ASSIGN_OR_RETURN(e->args[1], CastTo(e->args[1], common));
      X100_ASSIGN_OR_RETURN(e->args[2], CastTo(e->args[2], common));
      e->type = common;
    }
  } else if (fn.rfind("cast_", 0) == 0) {
    const std::string target = fn.substr(5);
    TypeId to = TypeId::kI64;
    for (int t = 0; t < kNumTypes; t++) {
      if (target == TypeName(static_cast<TypeId>(t))) {
        to = static_cast<TypeId>(t);
        break;
      }
    }
    e->type = to;
  } else if (fn == "length" || fn == "strpos" || fn == "year" ||
             fn == "month" || fn == "day" || fn == "quarter" ||
             fn == "dayofweek" || fn == "dayofyear") {
    e->type = TypeId::kI32;
  } else if (fn == "like" || fn == "notlike" || fn == "starts_with" ||
             fn == "ends_with" || fn == "contains" || fn == "isnull" ||
             fn == "isnotnull") {
    e->type = TypeId::kBool;
    if (fn == "isnull" || fn == "isnotnull") e->nullable = false;
  } else if (fn == "upper" || fn == "lower" || fn == "concat" ||
             fn == "substring" || fn == "trim" || fn == "ltrim" ||
             fn == "rtrim" || fn == "reverse" || fn == "repeat") {
    e->type = TypeId::kStr;
    // substring/repeat integer args must be i32 for the kernels.
    for (size_t i = 1; i < e->args.size(); i++) {
      if (IsIntegerType(arg_t(static_cast<int>(i))) &&
          arg_t(static_cast<int>(i)) != TypeId::kI32) {
        X100_ASSIGN_OR_RETURN(e->args[i], CastTo(e->args[i], TypeId::kI32));
      }
    }
  } else if (fn == "make_date") {
    e->type = TypeId::kDate;
  } else if (fn == "trunc_month" || fn == "trunc_year") {
    e->type = TypeId::kDate;
  } else {
    // Functions the rewriter should have expanded (between, coalesce, …)
    // reach here only when it did not run.
    return Status::NotFound("unknown function in binder: " + fn +
                            " (rewriter expansion missing?)");
  }
  e->bound = true;
  return e;
}

}  // namespace x100
