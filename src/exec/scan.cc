#include "exec/scan.h"

#include <cstring>

namespace x100 {

ScanOp::ScanOp(TableView view, std::shared_ptr<const Pdt> pdt_owner,
               BufferManager* buffers, ScanOptions opts)
    : view_(view),
      pdt_owner_(std::move(pdt_owner)),
      buffers_(buffers),
      opts_(std::move(opts)) {
  const Schema& s = view_.base->schema();
  for (int c : opts_.columns) out_schema_.AddField(s.field(c));
}

Status ScanOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  reader_ = std::make_unique<TableReader>(view_.base, buffers_);
  out_ = std::make_unique<Batch>(out_schema_, ctx->vector_size);
  group_cols_.resize(opts_.columns.size());
  if (opts_.scheduler != nullptr) {
    scheduler_qid_ = opts_.scheduler->Register(view_.base->num_groups());
  }
  opened_ = true;
  return Status::OK();
}

void ScanOp::CloseImpl() {
  if (opts_.scheduler != nullptr && scheduler_qid_ >= 0) {
    opts_.scheduler->Unregister(scheduler_qid_);
    scheduler_qid_ = -1;
  }
  group_cols_.clear();
  segments_.clear();
}

bool ScanOp::GroupCanMatch(int g) const {
  // MinMax skipping is only sound when no deltas can contribute rows
  // inside this group's SID range.
  const GroupMeta& gm = view_.base->group(g);
  for (const Pdt* layer : view_.layers) {
    if (layer->HasDeltaIn(gm.first_sid, gm.first_sid + gm.rows)) return true;
  }
  for (const ScanPredicate& p : opts_.predicates) {
    if (!view_.base->GroupMayMatch(g, p.table_col, p.op, p.value)) {
      return false;
    }
  }
  return true;
}

bool ScanOp::NextGroupId(int* g) {
  if (opts_.use_subset) {
    while (subset_idx_ < opts_.group_subset.size()) {
      *g = opts_.group_subset[subset_idx_++];
      return true;
    }
    return false;
  }
  if (opts_.morsels != nullptr) {
    const int got = opts_.morsels->NextGroup();
    if (got < 0) return false;
    *g = got;
    return true;
  }
  if (opts_.scheduler != nullptr) {
    const int got = opts_.scheduler->NextGroup(scheduler_qid_);
    if (got < 0) return false;
    *g = got;
    return true;
  }
  if (seq_next_group_ < view_.base->num_groups()) {
    *g = seq_next_group_++;
    return true;
  }
  return false;
}

int ScanOp::PeekNextGroupId(int ahead) const {
  if (opts_.use_subset) {
    const size_t idx = subset_idx_ + static_cast<size_t>(ahead);
    return idx < opts_.group_subset.size() ? opts_.group_subset[idx] : -1;
  }
  if (opts_.morsels != nullptr) {
    const int g = opts_.morsels->PeekNext();
    return g < 0 ? -1 : g + ahead;  // advisory: other workers claim too
  }
  // Cooperative scheduling: the relevance policy picks the group at claim
  // time, so there is nothing sound to peek.
  if (opts_.scheduler != nullptr) return -1;
  return seq_next_group_ + ahead;
}

void ScanOp::PrefetchNextGroup() {
  if (ctx_->buffers == nullptr || !buffers_->prefetch_enabled()) return;
  // Two groups of lookahead: one group overlaps fully only while decode
  // time exceeds device time; the second absorbs the jitter when the two
  // are balanced. Prefetch() itself skips resident/in-flight blocks and
  // the budget gate bounds what actually issues, so re-requesting the
  // same window every group is cheap and retries reads the budget
  // refused last time.
  for (int ahead = 0; ahead < 2; ahead++) {
    const int g = PeekNextGroupId(ahead);
    if (g < 0 || g >= view_.base->num_groups()) continue;
    if (!GroupCanMatch(g)) continue;  // MinMax will skip it: no IO to hide
    const GroupMeta& gm = view_.base->group(g);
    if (view_.base->layout() == Layout::kPax) {
      for (BlockId b : gm.pax_blocks) buffers_->Prefetch(b, ctx_->scheduler);
      continue;
    }
    for (int c : opts_.columns) {
      const ColumnChunkMeta& cm = gm.cols[c];
      for (BlockId b : cm.loc.blocks) buffers_->Prefetch(b, ctx_->scheduler);
      for (BlockId b : cm.null_loc.blocks) {
        buffers_->Prefetch(b, ctx_->scheduler);
      }
    }
  }
}

Status ScanOp::LoadGroup(int g) {
  // Overlap: start the upcoming groups' block reads in the background
  // BEFORE this group's demand pins. This group's blocks were (usually)
  // prefetched a cycle ago and sit at the front of the read-ahead FIFO,
  // so issuing the next window first costs the demand path nothing — but
  // issuing it only after the decode below leaves the device idle for
  // exactly that decode time, every group.
  PrefetchNextGroup();
  const GroupMeta& gm = view_.base->group(g);
  const int rows = static_cast<int>(gm.rows);
  for (size_t k = 0; k < opts_.columns.size(); k++) {
    const int c = opts_.columns[k];
    GroupCol& gc = group_cols_[k];
    const TypeId t = view_.base->schema().field(c).type;
    gc.data.resize(static_cast<size_t>(rows) * TypeWidth(t));
    const bool nullable = view_.base->schema().field(c).nullable;
    gc.has_nulls = nullable;
    gc.nulls.assign(nullable ? rows : 0, 0);
    if (t == TypeId::kStr) {
      gc.heap = std::make_unique<StringHeap>();
    }
    X100_RETURN_IF_ERROR(reader_->ReadColumn(
        g, c, gc.data.data(), nullable ? gc.nulls.data() : nullptr,
        gc.heap.get(), ctx_->cancel));
  }
  // Merge plan: visible slots for this group's SID range.
  segments_.clear();
  seg_idx_ = 0;
  seg_off_ = 0;
  const int64_t lo = gm.first_sid, hi = gm.first_sid + gm.rows;
  view_.ForEachVisible(
      lo, hi, /*include_tail=*/false,
      [&](int64_t a, int64_t b) {
        Segment s;
        s.is_run = true;
        s.a = a - lo;
        s.b = b - lo;
        segments_.push_back(std::move(s));
      },
      [&](const VisibleSlot& vs) {
        Segment s;
        s.is_run = false;
        s.slot.is_insert = vs.is_insert;
        s.slot.local = vs.sid - lo;
        s.slot.row = vs.row;
        s.slot.mods = vs.mods;
        segments_.push_back(std::move(s));
      });
  return Status::OK();
}

Status ScanOp::LoadTail() {
  segments_.clear();
  seg_idx_ = 0;
  seg_off_ = 0;
  const int64_t n = view_.base_rows();
  view_.ForEachVisible(
      n, n, /*include_tail=*/true, [](int64_t, int64_t) {},
      [&](const VisibleSlot& vs) {
        Segment s;
        s.is_run = false;
        s.slot.is_insert = vs.is_insert;
        s.slot.local = -1;
        s.slot.row = vs.row;
        s.slot.mods = vs.mods;
        segments_.push_back(std::move(s));
      });
  return Status::OK();
}

void ScanOp::FillFromRun(int64_t a, int64_t b, int count, int out_base) {
  (void)b;
  for (size_t k = 0; k < opts_.columns.size(); k++) {
    GroupCol& gc = group_cols_[k];
    Vector* out = out_->column(static_cast<int>(k));
    const TypeId t = out->type();
    const int w = TypeWidth(t);
    if (t == TypeId::kStr) {
      // Share the group heap's bytes: the batch is consumed before the
      // group buffers are replaced (operator batch-lifetime contract).
      const StrRef* in = reinterpret_cast<const StrRef*>(gc.data.data());
      StrRef* o = out->Data<StrRef>();
      for (int i = 0; i < count; i++) o[out_base + i] = in[a + i];
    } else {
      std::memcpy(static_cast<uint8_t*>(out->RawData()) +
                      static_cast<size_t>(out_base) * w,
                  gc.data.data() + static_cast<size_t>(a) * w,
                  static_cast<size_t>(count) * w);
    }
    if (gc.has_nulls) {
      bool any = false;
      for (int i = 0; i < count && !any; i++) any = gc.nulls[a + i] != 0;
      if (any || out->has_nulls()) {
        uint8_t* on = out->MutableNulls();
        std::memcpy(on + out_base, gc.nulls.data() + a, count);
      }
    } else if (out->has_nulls()) {
      std::memset(out->MutableNulls() + out_base, 0, count);
    }
  }
}

Status ScanOp::FillFromSlot(const Slot& slot, int out_base) {
  for (size_t k = 0; k < opts_.columns.size(); k++) {
    const int c = opts_.columns[k];
    Vector* out = out_->column(static_cast<int>(k));
    // Mods override; otherwise inserts supply values, stable rows come
    // from the decoded group buffers.
    const Value* override_v = nullptr;
    for (const auto& [mc, v] : slot.mods) {
      if (mc == c) override_v = v;  // last (upper layer) wins
    }
    const Value* src = nullptr;
    if (override_v != nullptr) {
      src = override_v;
    } else if (slot.is_insert) {
      if (c >= static_cast<int>(slot.row->values.size())) {
        return Status::Internal("insert row arity below column index");
      }
      src = &slot.row->values[c];
    }
    if (src != nullptr) {
      if (src->is_null()) {
        out->SetNull(out_base);
        continue;
      }
      switch (out->type()) {
        case TypeId::kBool:
          out->Data<uint8_t>()[out_base] = src->AsBool() ? 1 : 0;
          break;
        case TypeId::kI8:
          out->Data<int8_t>()[out_base] = static_cast<int8_t>(src->AsI64());
          break;
        case TypeId::kI16:
          out->Data<int16_t>()[out_base] =
              static_cast<int16_t>(src->AsI64());
          break;
        case TypeId::kI32:
        case TypeId::kDate:
          out->Data<int32_t>()[out_base] =
              static_cast<int32_t>(src->AsI64());
          break;
        case TypeId::kI64:
          out->Data<int64_t>()[out_base] = src->AsI64();
          break;
        case TypeId::kF64:
          out->Data<double>()[out_base] = src->AsF64();
          break;
        case TypeId::kStr:
          out->Data<StrRef>()[out_base] = out->heap()->Add(src->AsStr());
          break;
      }
      if (out->has_nulls()) out->MutableNulls()[out_base] = 0;
    } else {
      // Unmodified stable cell: copy from the decoded group buffer.
      GroupCol& gc = group_cols_[k];
      if (gc.has_nulls && gc.nulls[slot.local]) {
        out->SetNull(out_base);
        continue;
      }
      if (out->type() == TypeId::kStr) {
        out->Data<StrRef>()[out_base] =
            reinterpret_cast<const StrRef*>(gc.data.data())[slot.local];
      } else {
        const int w = TypeWidth(out->type());
        std::memcpy(static_cast<uint8_t*>(out->RawData()) +
                        static_cast<size_t>(out_base) * w,
                    gc.data.data() + static_cast<size_t>(slot.local) * w, w);
      }
      if (out->has_nulls()) out->MutableNulls()[out_base] = 0;
    }
  }
  return Status::OK();
}

Result<Batch*> ScanOp::NextImpl() {
  if (!opened_) return Status::Internal("scan not opened");
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  if (eos_) return nullptr;
  out_->Reset();
  int filled = 0;

  while (filled < ctx_->vector_size) {
    if (seg_idx_ >= segments_.size()) {
      if (filled > 0) break;  // deliver what we have before switching group
      int g;
      if (NextGroupId(&g)) {
        if (!GroupCanMatch(g)) {
          groups_skipped_++;
          ctx_->groups_skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        X100_RETURN_IF_ERROR(ctx_->CheckCancel());
        X100_RETURN_IF_ERROR(LoadGroup(g));
        continue;
      }
      if (!tail_done_) {
        tail_done_ = true;
        // Morsel-driven scans race for the tail; exactly one clone merges
        // the in-memory inserts. Static plans use include_tail.
        const bool tail_mine = opts_.morsels != nullptr
                                   ? opts_.morsels->ClaimTail()
                                   : opts_.include_tail;
        if (tail_mine) {
          X100_RETURN_IF_ERROR(LoadTail());
          continue;
        }
      }
      eos_ = true;
      break;
    }
    Segment& seg = segments_[seg_idx_];
    if (seg.is_run) {
      const int64_t remaining = (seg.b - seg.a) - seg_off_;
      const int take = static_cast<int>(
          std::min<int64_t>(remaining, ctx_->vector_size - filled));
      FillFromRun(seg.a + seg_off_, seg.a + seg_off_ + take, take, filled);
      filled += take;
      seg_off_ += take;
      if (seg_off_ >= seg.b - seg.a) {
        seg_idx_++;
        seg_off_ = 0;
      }
    } else {
      X100_RETURN_IF_ERROR(FillFromSlot(seg.slot, filled));
      filled++;
      seg_idx_++;
    }
  }

  if (filled == 0) return nullptr;
  out_->set_rows(filled);
  ctx_->tuples_scanned.fetch_add(filled, std::memory_order_relaxed);
  return out_.get();
}

}  // namespace x100
