// SortOp / ParallelSortOp: full materializing sort and bounded top-N.
// NULLs order last ascending, first descending (documented engine rule).
//
// ParallelSortOp is the pipeline-executor sink for ORDER BY: per-worker
// sorted runs built by scheduler tasks, merged at the pipeline barrier
// (docs/EXECUTION.md). Two shapes:
//  * N cloned input chains (morsel-parallel input): each task drains and
//    sorts its own run.
//  * one non-clonable input (e.g. an aggregation's output): one task
//    drains it, then the materialized rows are range-split and sorted by
//    parallel tasks.
// A LIMIT truncates each run to the limit before the merge, so top-N never
// materializes more than runs x limit rows for the merge phase.
//
// Out-of-core (docs/EXECUTION.md §"Memory accounting & spill"): when a
// drain worker's memory reservation fails it sorts what it holds and
// writes it as a SPILLED RUN — rows serialized in sorted order, chunked so
// the merge can stream them — then continues with an empty buffer. The
// k-way merge treats resident and spilled runs uniformly: resident runs
// iterate their sorted index, spilled runs hold one reloaded chunk at a
// time, so emit-phase memory is bounded by (resident rows + one chunk per
// spilled run). With spilling disabled a failed reservation surfaces
// kResourceExhausted through the pipeline's cancellation machinery.
#ifndef X100_EXEC_SORT_H_
#define X100_EXEC_SORT_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/operator.h"
#include "exec/row_buffer.h"
#include "storage/spill_file.h"

namespace x100 {

struct SortKey {
  int col;
  bool ascending = true;
};

/// One sorted run. Exactly one representation is populated:
///  * resident — `order` indexes into `rows` (range-split runs of a
///    single materialized input share one buffer);
///  * spilled  — `chunks` hold the rows serialized in sorted order.
struct SortRun {
  const RowBuffer* rows = nullptr;
  std::vector<int64_t> order;
  std::vector<SpillFile> chunks;

  bool spilled() const { return !chunks.empty(); }
};

/// Streaming k-way merge over sorted runs, shared by SortOp and
/// ParallelSortOp. Ties pick the lowest run index; runs are few, so
/// linear selection beats a heap in simplicity and is cache-friendly for
/// small k. Spilled runs stream chunk-by-chunk from disk; the resident
/// chunk is force-charged against the query tracker and released when the
/// cursor advances past it.
class SortRunMerger {
 public:
  /// `limit` < 0: merge everything; otherwise stop after `limit` rows.
  Status Init(const Schema* schema, const std::vector<SortKey>* keys,
              int64_t limit, ExecContext* ctx, std::vector<SortRun>* runs);

  /// Gathers up to `out`'s capacity rows in merge order; `*n` = 0 at end
  /// of stream.
  Status NextBatch(Batch* out, int* n);

 private:
  struct Cursor {
    SortRun* run = nullptr;
    size_t pos = 0;                          // resident: index into order
    size_t chunk = 0;                        // spilled: next chunk to load
    std::unique_ptr<RowBuffer> chunk_rows;   // spilled: resident chunk
    int64_t chunk_pos = 0;                   // spilled: row within chunk
    MemoryReservation mem;
    bool done = false;
  };

  /// Loads the cursor's next spilled chunk (releasing the previous one);
  /// marks the cursor done when chunks are exhausted.
  Status AdvanceChunk(Cursor* c);
  /// Current row of a cursor; false when the cursor is exhausted.
  bool CurrentRow(const Cursor& c, const RowBuffer** rows,
                  int64_t* row) const;

  const Schema* schema_ = nullptr;
  const std::vector<SortKey>* keys_ = nullptr;
  int64_t limit_ = -1;
  int64_t emitted_ = 0;
  ExecContext* ctx_ = nullptr;
  std::vector<Cursor> cursors_;
};

class SortOp : public Operator {
 public:
  /// limit < 0: full sort; otherwise top-`limit` rows.
  SortOp(OperatorPtr child, std::vector<SortKey> keys, int64_t limit = -1);
  ~SortOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { if (child_) child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override {
    return limit_ < 0 ? "Sort" : "TopN";
  }

 private:
  Status Materialize();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  ExecContext* ctx_ = nullptr;
  std::unique_ptr<RowBuffer> rows_;
  MemoryReservation rows_mem_;
  std::vector<SortRun> runs_;
  SortRunMerger merger_;
  bool materialized_ = false;
  std::unique_ptr<Batch> out_;
};

/// Pipeline-parallel sort: run-per-worker, k-way merge at the barrier.
class ParallelSortOp : public Operator {
 public:
  /// `chains`: >= 1 input worker chains (clones sharing morsel sources /
  /// join build states underneath). With a single chain, `split_ways`
  /// controls how many range-sort tasks run after materialization; with
  /// multiple chains it is ignored (one run per chain).
  ParallelSortOp(std::vector<OperatorPtr> chains, std::vector<SortKey> keys,
                 int64_t limit = -1, int split_ways = 1);
  ~ParallelSortOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override {
    return chains_[0]->output_schema();
  }
  std::string name() const override {
    return (limit_ < 0 ? "ParallelSort(" : "ParallelTopN(") +
           std::to_string(num_runs()) + ")";
  }

 private:
  /// Planned width before the pipeline ran; the achieved run count after
  /// (a range-split sort caps its ways by the data size, so the profile
  /// must report what actually executed).
  int num_runs() const {
    if (materialized_) return static_cast<int>(runs_.size());
    return chains_.size() > 1 ? static_cast<int>(chains_.size())
                              : split_ways_;
  }
  /// Phase 1: drain input(s) into per-run buffers + sorted index runs
  /// (scheduler tasks, barrier), spilling sorted runs under memory
  /// pressure. Phase 2 is the streaming merge in NextImpl.
  Status ParallelMaterialize();

  std::vector<OperatorPtr> chains_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  int split_ways_;
  ExecContext* ctx_ = nullptr;

  std::vector<std::unique_ptr<RowBuffer>> buffers_;  // one per worker
  std::vector<MemoryReservation> buffer_mem_;
  std::vector<SortRun> runs_;
  SortRunMerger merger_;
  bool materialized_ = false;
  std::unique_ptr<Batch> out_;
};

}  // namespace x100

#endif  // X100_EXEC_SORT_H_
