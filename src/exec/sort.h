// SortOp / ParallelSortOp: full materializing sort and bounded top-N.
// NULLs order last ascending, first descending (documented engine rule).
//
// ParallelSortOp is the pipeline-executor sink for ORDER BY: per-worker
// sorted runs built by scheduler tasks, merged at the pipeline barrier
// (docs/EXECUTION.md). Two shapes:
//  * N cloned input chains (morsel-parallel input): each task drains and
//    sorts its own run.
//  * one non-clonable input (e.g. an aggregation's output): one task
//    drains it, then the materialized rows are range-split and sorted by
//    parallel tasks.
// A LIMIT truncates each run to the limit before the merge, so top-N never
// materializes more than runs x limit rows for the merge phase.
#ifndef X100_EXEC_SORT_H_
#define X100_EXEC_SORT_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/operator.h"
#include "exec/row_buffer.h"

namespace x100 {

struct SortKey {
  int col;
  bool ascending = true;
};

class SortOp : public Operator {
 public:
  /// limit < 0: full sort; otherwise top-`limit` rows.
  SortOp(OperatorPtr child, std::vector<SortKey> keys, int64_t limit = -1);
  ~SortOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { if (child_) child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override {
    return limit_ < 0 ? "Sort" : "TopN";
  }

 private:
  Status Materialize();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  ExecContext* ctx_ = nullptr;
  std::unique_ptr<RowBuffer> rows_;
  std::vector<int64_t> order_;
  int64_t emit_pos_ = 0;
  bool materialized_ = false;
  std::unique_ptr<Batch> out_;
};

/// Pipeline-parallel sort: run-per-worker, k-way merge at the barrier.
class ParallelSortOp : public Operator {
 public:
  /// `chains`: >= 1 input worker chains (clones sharing morsel sources /
  /// join build states underneath). With a single chain, `split_ways`
  /// controls how many range-sort tasks run after materialization; with
  /// multiple chains it is ignored (one run per chain).
  ParallelSortOp(std::vector<OperatorPtr> chains, std::vector<SortKey> keys,
                 int64_t limit = -1, int split_ways = 1);
  ~ParallelSortOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override {
    return chains_[0]->output_schema();
  }
  std::string name() const override {
    return (limit_ < 0 ? "ParallelSort(" : "ParallelTopN(") +
           std::to_string(num_runs()) + ")";
  }

 private:
  /// Planned width before the pipeline ran; the achieved run count after
  /// (a range-split sort caps its ways by the data size, so the profile
  /// must report what actually executed).
  int num_runs() const {
    if (materialized_) return static_cast<int>(runs_.size());
    return chains_.size() > 1 ? static_cast<int>(chains_.size())
                              : split_ways_;
  }
  /// Phase 1: drain input(s) into per-run buffers + sorted index runs
  /// (scheduler tasks, barrier). Phase 2: serial k-way merge of the runs
  /// into the emit order.
  Status ParallelMaterialize();

  std::vector<OperatorPtr> chains_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  int split_ways_;
  ExecContext* ctx_ = nullptr;

  /// One sorted run: indexes into a row buffer (runs of a range-split
  /// sort share one buffer).
  struct Run {
    const RowBuffer* rows = nullptr;
    std::vector<int64_t> order;
  };
  std::vector<std::unique_ptr<RowBuffer>> buffers_;
  std::vector<Run> runs_;
  std::vector<std::pair<int, int64_t>> merged_;  // (run, row) emit order
  int64_t emit_pos_ = 0;
  bool materialized_ = false;
  std::unique_ptr<Batch> out_;
};

}  // namespace x100

#endif  // X100_EXEC_SORT_H_
