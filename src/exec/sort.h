// SortOp / TopNOp: full materializing sort and bounded top-N.
// NULLs order last ascending, first descending (documented engine rule).
#ifndef X100_EXEC_SORT_H_
#define X100_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/row_buffer.h"

namespace x100 {

struct SortKey {
  int col;
  bool ascending = true;
};

class SortOp : public Operator {
 public:
  /// limit < 0: full sort; otherwise top-`limit` rows.
  SortOp(OperatorPtr child, std::vector<SortKey> keys, int64_t limit = -1);
  ~SortOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { if (child_) child_->Close(); }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override {
    return limit_ < 0 ? "Sort" : "TopN";
  }

 private:
  Status Materialize();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  ExecContext* ctx_ = nullptr;
  std::unique_ptr<RowBuffer> rows_;
  std::vector<int64_t> order_;
  int64_t emit_pos_ = 0;
  bool materialized_ = false;
  std::unique_ptr<Batch> out_;
};

}  // namespace x100

#endif  // X100_EXEC_SORT_H_
