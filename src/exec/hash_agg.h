// Hash group-by aggregation — serial and pipeline-parallel.
//
// The machinery is split so the pipeline executor can reuse it:
//  * GroupTable      — open-addressed group store (key rows + accumulator
//                      arrays) with an aggregate-aware MergeFrom, the
//                      barrier operation of parallel aggregation.
//  * AggWorkerState  — one worker chain's thread-local state: compiled
//                      key/aggregate programs + a private GroupTable.
//  * HashAggOp       — the serial operator (one worker over one child).
//  * ParallelHashAggOp — N cloned source chains drained by scheduler
//                      tasks into per-worker GroupTables, merged at the
//                      pipeline barrier (Leis-style morsel parallelism:
//                      no partial/final plan rewrite, no exchange).
//                      With radix_bits > 0 each worker keeps one
//                      GroupTable per radix partition (routed by the top
//                      bits of the key hash), and the barrier merge runs
//                      as 2^radix_bits independent scheduler tasks — one
//                      per partition — instead of one serial fold.
//
// Group ids are resolved for a whole vector, then aggregate update kernels
// fold the vector into accumulator arrays (the X100 aggr_* primitive
// pattern).
#ifndef X100_EXEC_HASH_AGG_H_
#define X100_EXEC_HASH_AGG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/expression.h"
#include "exec/operator.h"
#include "exec/row_buffer.h"
#include "exec/select_project.h"
#include "primitives/agg_kernels.h"
#include "simd/prefetch.h"
#include "storage/spill_file.h"

namespace x100 {

struct AggItem {
  AggKind kind;
  /// Input expression (ignored for COUNT(*): nullptr).
  ExprPtr input;
  std::string name;
};

/// Group store: key rows + open-addressed index + one accumulator set per
/// aggregate. Single-writer; parallel aggregation gives each worker its
/// own table and merges them at the barrier.
class GroupTable {
 public:
  /// Accumulators for one aggregate: i64/f64 running values plus the
  /// per-group count of non-NULL inputs folded so far.
  struct Accum {
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<int64_t> count;
    TypeId in_type = TypeId::kI64;
  };

  /// `kinds`/`in_types`: one entry per aggregate (merge semantics).
  GroupTable(const Schema& key_schema, std::vector<AggKind> kinds,
             std::vector<TypeId> in_types);

  /// Resolves the group id for key values (`key_vecs`, row `row`, with
  /// precomputed `hash`), appending a new group if unseen.
  Result<uint32_t> FindOrAdd(const std::vector<const Vector*>& key_vecs,
                             int row, uint64_t hash);

  /// Hints the bucket head for `hash` into cache. The whole vector's
  /// hashes are known before the FindOrAdd loop runs, so the lookup for
  /// row j can overlap the memory latency of row j + kPrefetchDistance.
  void PrefetchBucket(uint64_t hash) const {
    if (!buckets_.empty()) PrefetchRead(&buckets_[hash & bucket_mask_]);
  }

  /// Materializes the single group of a keyless aggregation so an empty
  /// input still yields one output row.
  void EnsureGlobalGroup();

  /// The parallel-aggregation barrier: folds every group of `src` into
  /// this table, combining accumulators by aggregate kind (SUM/COUNT/AVG
  /// add, MIN/MAX compare). `src` must share this table's construction.
  Status MergeFrom(const GroupTable& src);

  int64_t num_groups() const { return keys_->rows(); }
  const RowBuffer& keys() const { return *keys_; }
  Accum& accum(size_t a) { return accums_[a]; }
  const Accum& accum(size_t a) const { return accums_[a]; }

  /// Footprint for memory accounting: key rows, index, accumulators.
  size_t MemoryBytes() const;

  /// Spill serialization: key rows + hashes + accumulator arrays (the
  /// index is rebuilt on reload). kinds/in_types are NOT serialized —
  /// the reloader constructs the table and merges it back via MergeFrom.
  void SerializeTo(std::vector<uint8_t>* out) const;
  static Result<std::unique_ptr<GroupTable>> Deserialize(
      const Schema& key_schema, std::vector<AggKind> kinds,
      std::vector<TypeId> in_types, const uint8_t* data, size_t size);

 private:
  /// Appends a group row (already added to keys_) to the index +
  /// accumulators; rehashes at ~0.7 load factor.
  Result<uint32_t> FinishNewGroup(uint64_t hash);

  std::vector<AggKind> kinds_;
  std::unique_ptr<RowBuffer> keys_;
  std::vector<int64_t> buckets_;
  std::vector<int64_t> chain_;
  std::vector<uint64_t> key_hashes_;
  uint64_t bucket_mask_ = 0;
  std::vector<Accum> accums_;
};

/// One aggregation worker: a source chain plus the thread-local state that
/// drains it (compiled programs, scratch, private GroupTables — one per
/// radix partition). Used by both the serial operator (one worker, one
/// partition) and the parallel one (N workers, each driven by a scheduler
/// task, with 2^radix_bits partitions merged independently).
class AggWorkerState {
 public:
  /// Compiles programs and allocates the private tables. `radix_bits` is
  /// forced to 0 for keyless aggregation (a single global group cannot
  /// be partitioned).
  Status Prepare(const std::vector<ExprPtr>& bound_keys,
                 const std::vector<ExprPtr>& bound_aggs,
                 const Schema& key_schema,
                 const std::vector<AggItem>& aggs,
                 const std::vector<TypeId>& in_types, int vector_size,
                 int radix_bits = 0,
                 SimdLevel simd = SimdLevel::kScalar);

  /// Drains `child` (already open) to exhaustion into the private
  /// tables, routing each row to the partition named by the top
  /// radix_bits of its key hash.
  Status ConsumeAll(Operator* child, ExecContext* ctx,
                    const std::vector<AggItem>& aggs);

  GroupTable* table(int partition = 0) const {
    return partition < static_cast<int>(tables_.size())
               ? tables_[partition].get()
               : nullptr;
  }
  int num_partitions() const { return 1 << radix_bits_; }

  /// Reloads every chunk this worker spilled for `partition` and folds it
  /// into `dst` via MergeFrom — the merge-on-reload half of out-of-core
  /// aggregation. Called at the pipeline barrier (parallel: by the
  /// partition's merge task into the final table; serial: back into the
  /// worker's own table).
  Status MergeSpilled(int partition, GroupTable* dst,
                      CancellationToken* cancel) const;

  /// Records an "AggSpill" profile entry when this worker went out of
  /// core (rows = groups spilled).
  void RecordSpillProfile(ExecContext* ctx) const;

  /// Re-charges the reservation to the tables' current footprint with no
  /// spill fallback — the post-barrier minimum working set (the serial
  /// operator's reloaded table must be resident to emit).
  void ForceChargeTables();

  bool spilled() const { return spill_chunks_ > 0; }

 private:
  /// Grows the reservation to the tables' footprint; on failure spills
  /// the largest partition table (whole-partition chunks) or surfaces
  /// kResourceExhausted when ctx has no spill device.
  Status EnsureReservation(ExecContext* ctx);

  std::vector<std::unique_ptr<ExprProgram>> key_progs_;
  std::vector<std::unique_ptr<ExprProgram>> agg_progs_;  // null: COUNT(*)
  int radix_bits_ = 0;
  /// Resolved dispatch level: picks hash/agg kernel variants and gates
  /// the group-lookup prefetch window (kScalar = reference behavior).
  SimdLevel simd_ = SimdLevel::kScalar;
  std::vector<std::unique_ptr<GroupTable>> tables_;  // one per partition
  std::vector<uint32_t> gids_;
  std::vector<uint32_t> parts_;  // partition per live row (radix_bits > 0)
  std::vector<uint64_t> hashes_;

  // Spill construction state (what a fresh table needs) + results.
  Schema key_schema_;
  std::vector<AggKind> kinds_;
  std::vector<TypeId> in_types_;
  MemoryReservation reserv_;
  std::vector<std::vector<SpillFile>> spilled_;  // [partition][chunk]
  int64_t spill_bytes_ = 0;
  int64_t spill_chunks_ = 0;
  int64_t spill_rows_ = 0;
};

/// Binding shared by the serial and parallel operators: resolves group-by
/// and aggregate expressions against the input schema and derives the key
/// and output schemas.
struct AggBinding {
  Status Bind(const Schema& in, const std::vector<ProjectItem>& group_by,
              const std::vector<AggItem>& aggs);

  Schema key_schema;
  Schema out_schema;
  std::vector<ExprPtr> bound_keys;
  std::vector<ExprPtr> bound_aggs;  // nullptr for COUNT(*)
  std::vector<AggKind> kinds;
  std::vector<TypeId> in_types;
};

class HashAggOp : public Operator {
 public:
  /// `group_by`: expressions evaluated as grouping keys (usually column
  /// refs); their names become output columns, followed by the aggregates.
  HashAggOp(OperatorPtr child, std::vector<ProjectItem> group_by,
            std::vector<AggItem> aggs);
  ~HashAggOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override {
    return binding_.out_schema;
  }
  std::string name() const override { return "HashAgg"; }

  int64_t num_groups() const {
    return worker_.table() ? worker_.table()->num_groups() : 0;
  }

 private:
  OperatorPtr child_;
  std::vector<ProjectItem> group_items_;
  std::vector<AggItem> agg_items_;
  AggBinding binding_;
  Status init_status_;
  ExecContext* ctx_ = nullptr;

  AggWorkerState worker_;
  bool consumed_ = false;
  std::unique_ptr<Batch> out_;
  int64_t emit_pos_ = 0;
};

/// Pipeline-parallel aggregation: the sink of a scan→[probe→]aggregate
/// pipeline. Each of the N cloned source chains (sharing morsel sources
/// and join build states underneath) is drained by a scheduler task into
/// per-worker GroupTables (one per radix partition); at the TaskGroup
/// barrier each partition is merged by an independent scheduler task
/// (radix_bits = 0: one table, one merge task — the serial fallback),
/// then groups stream out partition by partition.
class ParallelHashAggOp : public Operator {
 public:
  ParallelHashAggOp(std::vector<OperatorPtr> chains,
                    std::vector<ProjectItem> group_by,
                    std::vector<AggItem> aggs, int radix_bits = 0);
  ~ParallelHashAggOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override {
    return binding_.out_schema;
  }
  std::string name() const override {
    return "ParallelHashAgg(" + std::to_string(chains_.size()) + ")";
  }

 private:
  /// Runs the pipeline: spawn tasks (bounded by the query's TaskQuota),
  /// barrier, then a per-partition merge fan-out into `final_`.
  Status ParallelConsume();

  std::vector<OperatorPtr> chains_;
  std::vector<ProjectItem> group_items_;
  std::vector<AggItem> agg_items_;
  int radix_bits_;
  AggBinding binding_;
  Status init_status_;
  ExecContext* ctx_ = nullptr;

  std::vector<std::unique_ptr<AggWorkerState>> workers_;
  std::vector<std::unique_ptr<GroupTable>> final_;  // one per partition
  /// Charges for the merged final tables (force-reserved: they must be
  /// resident to emit; the drain phase is what spilling bounds).
  std::vector<MemoryReservation> final_mem_;
  bool consumed_ = false;
  std::unique_ptr<Batch> out_;
  int emit_part_ = 0;
  int64_t emit_pos_ = 0;
};

}  // namespace x100

#endif  // X100_EXEC_HASH_AGG_H_
