// HashAggOp: vectorized hash group-by. Group ids are resolved for a whole
// vector, then aggregate update kernels fold the vector into accumulator
// arrays (the X100 aggr_* primitive pattern).
#ifndef X100_EXEC_HASH_AGG_H_
#define X100_EXEC_HASH_AGG_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "exec/operator.h"
#include "exec/row_buffer.h"
#include "exec/select_project.h"
#include "primitives/agg_kernels.h"

namespace x100 {

struct AggItem {
  AggKind kind;
  /// Input expression (ignored for COUNT(*): nullptr).
  ExprPtr input;
  std::string name;
};

class HashAggOp : public Operator {
 public:
  /// `group_by`: expressions evaluated as grouping keys (usually column
  /// refs); their names become output columns, followed by the aggregates.
  HashAggOp(OperatorPtr child, std::vector<ProjectItem> group_by,
            std::vector<AggItem> aggs);
  ~HashAggOp() override { Close(); }

  Status OpenImpl(ExecContext* ctx) override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  const Schema& output_schema() const override { return out_schema_; }
  std::string name() const override { return "HashAgg"; }

  int64_t num_groups() const { return keys_ ? keys_->rows() : 0; }

 private:
  Status Consume();
  Result<uint32_t> GroupIdFor(Batch& in, int row,
                              const std::vector<const Vector*>& key_vecs,
                              uint64_t hash);
  Status EmitGroups();

  OperatorPtr child_;
  std::vector<ProjectItem> group_items_;
  std::vector<AggItem> agg_items_;
  std::vector<ExprPtr> bound_keys_;
  std::vector<ExprPtr> bound_aggs_;  // nullptr for COUNT(*)
  Status init_status_;
  Schema out_schema_;
  Schema key_schema_;
  ExecContext* ctx_ = nullptr;

  std::vector<std::unique_ptr<ExprProgram>> key_progs_;
  std::vector<std::unique_ptr<ExprProgram>> agg_progs_;

  // Group store: key rows + open-addressed index.
  std::unique_ptr<RowBuffer> keys_;
  std::vector<int64_t> buckets_;
  std::vector<int64_t> chain_;
  std::vector<uint64_t> key_hashes_;
  uint64_t bucket_mask_ = 0;

  // Accumulators (per aggregate): i64/f64 arrays + per-group seen counts.
  struct Accum {
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<int64_t> count;   // non-null inputs folded
    TypeId in_type = TypeId::kI64;
  };
  std::vector<Accum> accums_;
  std::vector<uint32_t> gids_;
  std::vector<uint64_t> hashes_;

  bool consumed_ = false;
  std::unique_ptr<Batch> out_;
  int64_t emit_pos_ = 0;
};

}  // namespace x100

#endif  // X100_EXEC_HASH_AGG_H_
