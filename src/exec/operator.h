// Vectorized operator interface (pull-based, batch-at-a-time).
//
// Operators return pointers to internally-owned batches; a batch stays
// valid until the operator's next Next()/Close(). Every operator polls the
// cancellation token once per vector, which is what makes "proper query
// cancellation" (paper §Query cancellation) cheap and prompt.
//
// The public Open/Next/Close entry points are NON-virtual: they wrap the
// per-operator OpenImpl/NextImpl/CloseImpl with metric collection
// (batches, rows, wall time), flushed into the ExecContext's QueryProfile
// when the operator closes. Parents must call the public methods on their
// children so the whole tree is profiled.
#ifndef X100_EXEC_OPERATOR_H_
#define X100_EXEC_OPERATOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/cancellation.h"
#include "common/config.h"
#include "common/result.h"
#include "common/value.h"
#include "monitor/profile.h"
#include "vector/batch.h"

namespace x100 {

class EventLog;        // monitor/monitor.h
class TaskScheduler;   // common/task_scheduler.h
class TaskQuota;       // common/task_scheduler.h
class MemoryTracker;   // common/memory_tracker.h
class SpillDevice;     // storage/spill_device.h
class BufferManager;   // storage/buffer_manager.h

/// Per-query execution context shared by all operators of a plan.
struct ExecContext {
  int vector_size = kDefaultVectorSize;
  /// Resolved SIMD dispatch level for this query's kernels. The default
  /// resolves kAuto (X100_SIMD env knob, then CPU detection) so
  /// directly-built plans in tests honor the knob; QueryExecutor
  /// overwrites it from EngineConfig::simd_level.
  SimdLevel simd = ResolveSimdLevel(SimdMode::kAuto);
  CancellationToken* cancel = nullptr;
  EventLog* events = nullptr;
  /// Pool parallel operators (pipelines, XchgOp) schedule their tasks on;
  /// nullptr means TaskScheduler::Global().
  TaskScheduler* scheduler = nullptr;
  /// Per-query admission control: pipelines acquire task slots here
  /// before spawning (nullptr = unlimited). Owned by the query executor.
  TaskQuota* quota = nullptr;
  /// Per-query memory budget (child of the Database's process-wide
  /// tracker). nullptr = unaccounted execution (directly-built plans in
  /// tests); pipeline breakers then never spill.
  MemoryTracker* memory = nullptr;
  /// Device pipeline breakers spill radix partitions / sorted runs /
  /// Grace probe partitions to when a reservation fails — the in-RAM
  /// SimulatedDisk by default, a FileSpillDevice when the engine is
  /// configured with a spill_path. nullptr = spilling disabled: a failed
  /// reservation surfaces kResourceExhausted instead.
  SpillDevice* spill_device = nullptr;
  /// Buffer pool serving this query's table blocks. Operators that can
  /// overlap IO with compute (scan read-ahead, Grace pair prefetch) use
  /// it to issue background reads and to budget ahead-of-demand bytes;
  /// nullptr = no read-ahead (directly-built plans in tests keep exact,
  /// synchronous IO counts).
  BufferManager* buffers = nullptr;
  /// Running total of tuples produced by scans (load monitoring).
  std::atomic<int64_t> tuples_scanned{0};
  /// Block groups elided by MinMax pushdown across all scans.
  std::atomic<int64_t> groups_skipped{0};

  Status CheckCancel() const {
    return cancel ? cancel->Check() : Status::OK();
  }

  /// Thread-safe sink for closed operators' metrics (exchange producers
  /// close on pool threads).
  void RecordOperator(OperatorProfile p) {
    std::lock_guard<std::mutex> lock(profile_mu);
    profile.operators.push_back(std::move(p));
  }
  /// Snapshot with the scan counters folded in.
  QueryProfile TakeProfile() {
    std::lock_guard<std::mutex> lock(profile_mu);
    profile.tuples_scanned = tuples_scanned.load();
    profile.groups_skipped = groups_skipped.load();
    return profile;
  }

  std::mutex profile_mu;
  QueryProfile profile;
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares for execution (allocates batches, opens children).
  Status Open(ExecContext* ctx);

  /// Produces the next batch; nullptr at end-of-stream. The batch is owned
  /// by the operator and valid until the next call.
  Result<Batch*> Next();

  /// Releases resources; idempotent, called on success, error and
  /// cancellation paths alike (RAII backstop in destructors). Flushes this
  /// operator's metrics into the context profile on first invocation.
  void Close();

  virtual const Schema& output_schema() const = 0;
  virtual std::string name() const = 0;

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<Batch*> NextImpl() = 0;
  virtual void CloseImpl() = 0;

 private:
  ExecContext* profile_ctx_ = nullptr;
  OperatorProfile prof_;
  bool prof_flushed_ = false;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` into a materialized result (rows of Values). Used by tests,
/// examples and the session layer.
struct QueryResult {
  Schema schema;
  std::vector<std::vector<Value>> rows;
  int64_t batches = 0;
  /// Per-operator execution profile (filled by QueryExecutor::Execute;
  /// empty for results not produced through it).
  QueryProfile profile;
};
Result<QueryResult> CollectRows(Operator* op, ExecContext* ctx);

}  // namespace x100

#endif  // X100_EXEC_OPERATOR_H_
