// Vectorized operator interface (pull-based, batch-at-a-time).
//
// Operators return pointers to internally-owned batches; a batch stays
// valid until the operator's next Next()/Close(). Every operator polls the
// cancellation token once per vector, which is what makes "proper query
// cancellation" (paper §Query cancellation) cheap and prompt.
#ifndef X100_EXEC_OPERATOR_H_
#define X100_EXEC_OPERATOR_H_

#include <memory>
#include <string>

#include "common/cancellation.h"
#include "common/config.h"
#include "common/result.h"
#include "common/value.h"
#include "vector/batch.h"

namespace x100 {

class EventLog;  // monitor/event_log.h

/// Per-query execution context shared by all operators of a plan.
struct ExecContext {
  int vector_size = kDefaultVectorSize;
  CancellationToken* cancel = nullptr;
  EventLog* events = nullptr;
  /// Running total of tuples produced by scans (load monitoring).
  std::atomic<int64_t> tuples_scanned{0};

  Status CheckCancel() const {
    return cancel ? cancel->Check() : Status::OK();
  }
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares for execution (allocates batches, opens children).
  virtual Status Open(ExecContext* ctx) = 0;

  /// Produces the next batch; nullptr at end-of-stream. The batch is owned
  /// by the operator and valid until the next call.
  virtual Result<Batch*> Next() = 0;

  /// Releases resources; idempotent, called on success, error and
  /// cancellation paths alike (RAII backstop in destructors).
  virtual void Close() = 0;

  virtual const Schema& output_schema() const = 0;
  virtual std::string name() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` into a materialized result (rows of Values). Used by tests,
/// examples and the session layer.
struct QueryResult {
  Schema schema;
  std::vector<std::vector<Value>> rows;
  int64_t batches = 0;
};
Result<QueryResult> CollectRows(Operator* op, ExecContext* ctx);

}  // namespace x100

#endif  // X100_EXEC_OPERATOR_H_
