#include "exec/sort.h"

#include <algorithm>

namespace x100 {

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys, int64_t limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {}

Status SortOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(child_->Open(ctx));
  out_ = std::make_unique<Batch>(child_->output_schema(), ctx->vector_size);
  return Status::OK();
}

namespace {

/// -1 / 0 / +1 three-way compare of two cells; NULLs compare greater
/// (NULLS LAST ascending).
int CompareCell(const RowBuffer& rows, int col, int64_t a, int64_t b) {
  const bool an = rows.IsNull(col, a), bn = rows.IsNull(col, b);
  if (an || bn) return an == bn ? 0 : (an ? 1 : -1);
  switch (rows.schema().field(col).type) {
    case TypeId::kBool: {
      const auto x = rows.Col<uint8_t>(col)[a], y = rows.Col<uint8_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI8: {
      const auto x = rows.Col<int8_t>(col)[a], y = rows.Col<int8_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI16: {
      const auto x = rows.Col<int16_t>(col)[a], y = rows.Col<int16_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI32:
    case TypeId::kDate: {
      const auto x = rows.Col<int32_t>(col)[a], y = rows.Col<int32_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI64: {
      const auto x = rows.Col<int64_t>(col)[a], y = rows.Col<int64_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kF64: {
      const auto x = rows.Col<double>(col)[a], y = rows.Col<double>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kStr: {
      const StrRef& x = rows.Col<StrRef>(col)[a];
      const StrRef& y = rows.Col<StrRef>(col)[b];
      return x < y ? -1 : y < x ? 1 : 0;
    }
  }
  return 0;
}

}  // namespace

Status SortOp::Materialize() {
  rows_ = std::make_unique<RowBuffer>(child_->output_schema());
  while (true) {
    X100_RETURN_IF_ERROR(ctx_->CheckCancel());
    Batch* b;
    X100_ASSIGN_OR_RETURN(b, child_->Next());
    if (b == nullptr) break;
    rows_->AppendBatch(*b);
  }
  order_.resize(rows_->rows());
  for (int64_t i = 0; i < rows_->rows(); i++) order_[i] = i;
  auto cmp = [&](int64_t a, int64_t b) {
    for (const SortKey& k : keys_) {
      int c = CompareCell(*rows_, k.col, a, b);
      if (!k.ascending) c = -c;
      if (c != 0) return c < 0;
    }
    return a < b;  // stable tie-break
  };
  if (limit_ >= 0 && limit_ < static_cast<int64_t>(order_.size())) {
    std::partial_sort(order_.begin(), order_.begin() + limit_, order_.end(),
                      cmp);
    order_.resize(limit_);
  } else {
    std::sort(order_.begin(), order_.end(), cmp);
  }
  materialized_ = true;
  return Status::OK();
}

Result<Batch*> SortOp::NextImpl() {
  if (!materialized_) X100_RETURN_IF_ERROR(Materialize());
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  if (emit_pos_ >= static_cast<int64_t>(order_.size())) return nullptr;
  out_->Reset();
  const int n = static_cast<int>(std::min<int64_t>(
      ctx_->vector_size, static_cast<int64_t>(order_.size()) - emit_pos_));
  for (int j = 0; j < n; j++) {
    const int64_t r = order_[emit_pos_ + j];
    for (int c = 0; c < out_->num_columns(); c++) {
      rows_->GatherCell(c, r, out_->column(c), j);
    }
  }
  emit_pos_ += n;
  out_->set_rows(n);
  return out_.get();
}

}  // namespace x100
