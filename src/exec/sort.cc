#include "exec/sort.h"

#include <algorithm>
#include <atomic>

#include "common/task_scheduler.h"

namespace x100 {

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys, int64_t limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {}

Status SortOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(child_->Open(ctx));
  out_ = std::make_unique<Batch>(child_->output_schema(), ctx->vector_size);
  return Status::OK();
}

namespace {

/// -1 / 0 / +1 three-way compare of two cells, possibly from different
/// row buffers of the same schema; NULLs compare greater (NULLS LAST
/// ascending).
int CompareCellAB(const RowBuffer& ra, int64_t a, const RowBuffer& rb,
                  int64_t b, int col) {
  const bool an = ra.IsNull(col, a), bn = rb.IsNull(col, b);
  if (an || bn) return an == bn ? 0 : (an ? 1 : -1);
  switch (ra.schema().field(col).type) {
    case TypeId::kBool: {
      const auto x = ra.Col<uint8_t>(col)[a], y = rb.Col<uint8_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI8: {
      const auto x = ra.Col<int8_t>(col)[a], y = rb.Col<int8_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI16: {
      const auto x = ra.Col<int16_t>(col)[a], y = rb.Col<int16_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI32:
    case TypeId::kDate: {
      const auto x = ra.Col<int32_t>(col)[a], y = rb.Col<int32_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI64: {
      const auto x = ra.Col<int64_t>(col)[a], y = rb.Col<int64_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kF64: {
      const auto x = ra.Col<double>(col)[a], y = rb.Col<double>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kStr: {
      const StrRef& x = ra.Col<StrRef>(col)[a];
      const StrRef& y = rb.Col<StrRef>(col)[b];
      return x < y ? -1 : y < x ? 1 : 0;
    }
  }
  return 0;
}

inline int CompareCell(const RowBuffer& rows, int col, int64_t a,
                       int64_t b) {
  return CompareCellAB(rows, a, rows, b, col);
}

/// Keyed three-way compare across (possibly distinct) run buffers.
int CompareRowsAB(const RowBuffer& ra, int64_t a, const RowBuffer& rb,
                  int64_t b, const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    int c = CompareCellAB(ra, a, rb, b, k.col);
    if (!k.ascending) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

/// Sorts `order` (indexes into `rows`) by `keys`; a non-negative limit
/// keeps only the first `limit` entries (top-N runs).
void SortIndexRun(const RowBuffer& rows, const std::vector<SortKey>& keys,
                  int64_t limit, std::vector<int64_t>* order) {
  auto cmp = [&](int64_t a, int64_t b) {
    for (const SortKey& k : keys) {
      int c = CompareCell(rows, k.col, a, b);
      if (!k.ascending) c = -c;
      if (c != 0) return c < 0;
    }
    return a < b;  // stable tie-break within one run
  };
  if (limit >= 0 && limit < static_cast<int64_t>(order->size())) {
    std::partial_sort(order->begin(), order->begin() + limit, order->end(),
                      cmp);
    order->resize(limit);
  } else {
    std::sort(order->begin(), order->end(), cmp);
  }
}

}  // namespace

Status SortOp::Materialize() {
  rows_ = std::make_unique<RowBuffer>(child_->output_schema());
  while (true) {
    X100_RETURN_IF_ERROR(ctx_->CheckCancel());
    Batch* b;
    X100_ASSIGN_OR_RETURN(b, child_->Next());
    if (b == nullptr) break;
    rows_->AppendBatch(*b);
  }
  order_.resize(rows_->rows());
  for (int64_t i = 0; i < rows_->rows(); i++) order_[i] = i;
  SortIndexRun(*rows_, keys_, limit_, &order_);
  materialized_ = true;
  return Status::OK();
}

Result<Batch*> SortOp::NextImpl() {
  if (!materialized_) X100_RETURN_IF_ERROR(Materialize());
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  if (emit_pos_ >= static_cast<int64_t>(order_.size())) return nullptr;
  out_->Reset();
  const int n = static_cast<int>(std::min<int64_t>(
      ctx_->vector_size, static_cast<int64_t>(order_.size()) - emit_pos_));
  for (int j = 0; j < n; j++) {
    const int64_t r = order_[emit_pos_ + j];
    for (int c = 0; c < out_->num_columns(); c++) {
      rows_->GatherCell(c, r, out_->column(c), j);
    }
  }
  emit_pos_ += n;
  out_->set_rows(n);
  return out_.get();
}

// ---------------------------------------------------------------------------
// ParallelSortOp
// ---------------------------------------------------------------------------

ParallelSortOp::ParallelSortOp(std::vector<OperatorPtr> chains,
                               std::vector<SortKey> keys, int64_t limit,
                               int split_ways)
    : chains_(std::move(chains)),
      keys_(std::move(keys)),
      limit_(limit),
      split_ways_(split_ways < 1 ? 1 : split_ways) {}

Status ParallelSortOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  if (chains_.empty()) {
    return Status::InvalidArgument("parallel sort needs >= 1 input chain");
  }
  // Chains open inside their pipeline tasks, not here.
  out_ = std::make_unique<Batch>(chains_[0]->output_schema(),
                                 ctx->vector_size);
  return Status::OK();
}

void ParallelSortOp::CloseImpl() {
  for (OperatorPtr& c : chains_) {
    if (c) c->Close();
  }
}

Status ParallelSortOp::ParallelMaterialize() {
  TaskScheduler* sched =
      ctx_->scheduler != nullptr ? ctx_->scheduler : TaskScheduler::Global();
  const int W = static_cast<int>(chains_.size());
  buffers_.clear();
  runs_.clear();

  if (W > 1) {
    // Shape 1: one run per cloned input chain; each task drains and sorts
    // its own run (the input pipeline and the sort overlap).
    buffers_.resize(W);
    runs_.resize(W);
    X100_RETURN_IF_ERROR(RunPipelineTasks(
        sched, ctx_->quota, ctx_->cancel, W,
        [this](int w, TaskGroup& group) -> Status {
          X100_RETURN_IF_ERROR(group.CheckCancel());
          buffers_[w] =
              std::make_unique<RowBuffer>(chains_[0]->output_schema());
          Operator* chain = chains_[w].get();
          Status s = chain->Open(ctx_);
          while (s.ok()) {
            s = group.CheckCancel();
            if (!s.ok()) break;
            auto b = chain->Next();
            if (!b.ok()) {
              s = b.status();
              break;
            }
            if (*b == nullptr) break;
            buffers_[w]->AppendBatch(**b);
          }
          chain->Close();
          X100_RETURN_IF_ERROR(s);
          Run& run = runs_[w];
          run.rows = buffers_[w].get();
          run.order.resize(buffers_[w]->rows());
          for (int64_t i = 0; i < buffers_[w]->rows(); i++) {
            run.order[i] = i;
          }
          SortIndexRun(*buffers_[w], keys_, limit_, &run.order);
          return Status::OK();
        }));
  } else {
    // Shape 2: non-clonable input (e.g. an aggregation). One task drains
    // it, then the materialized rows are range-split across sort tasks.
    buffers_.resize(1);
    buffers_[0] = std::make_unique<RowBuffer>(chains_[0]->output_schema());
    X100_RETURN_IF_ERROR(RunPipelineTasks(
        sched, ctx_->quota, ctx_->cancel, 1,
        [this](int, TaskGroup& group) -> Status {
          Operator* chain = chains_[0].get();
          Status s = chain->Open(ctx_);
          while (s.ok()) {
            s = group.CheckCancel();
            if (!s.ok()) break;
            auto b = chain->Next();
            if (!b.ok()) {
              s = b.status();
              break;
            }
            if (*b == nullptr) break;
            buffers_[0]->AppendBatch(**b);
          }
          chain->Close();
          return s;
        }));
    const int64_t n = buffers_[0]->rows();
    // Don't spawn more range tasks than vectors of data to sort.
    const int ways = static_cast<int>(
        std::max<int64_t>(1, std::min<int64_t>(split_ways_,
                                               (n + 1023) / 1024)));
    runs_.resize(ways);
    X100_RETURN_IF_ERROR(RunPipelineTasks(
        sched, ctx_->quota, ctx_->cancel, ways,
        [this, n, ways](int r, TaskGroup& group) -> Status {
          X100_RETURN_IF_ERROR(group.CheckCancel());
          const int64_t lo = n * r / ways, hi = n * (r + 1) / ways;
          Run& run = runs_[r];
          run.rows = buffers_[0].get();
          run.order.resize(hi - lo);
          for (int64_t i = lo; i < hi; i++) run.order[i - lo] = i;
          SortIndexRun(*buffers_[0], keys_, limit_, &run.order);
          return Status::OK();
        }));
  }

  // Barrier merge: k-way merge of the sorted runs. Ties pick the lowest
  // run index; runs are few, so linear selection beats a heap in
  // simplicity and is cache-friendly for small k.
  std::vector<size_t> cursor(runs_.size(), 0);
  int64_t total = 0;
  for (const Run& r : runs_) total += static_cast<int64_t>(r.order.size());
  if (limit_ >= 0) total = std::min<int64_t>(total, limit_);
  merged_.reserve(total);
  while (static_cast<int64_t>(merged_.size()) < total) {
    int best = -1;
    for (int r = 0; r < static_cast<int>(runs_.size()); r++) {
      if (cursor[r] >= runs_[r].order.size()) continue;
      if (best < 0 ||
          CompareRowsAB(*runs_[r].rows, runs_[r].order[cursor[r]],
                        *runs_[best].rows, runs_[best].order[cursor[best]],
                        keys_) < 0) {
        best = r;
      }
    }
    merged_.emplace_back(best, runs_[best].order[cursor[best]]);
    cursor[best]++;
  }
  materialized_ = true;
  return Status::OK();
}

Result<Batch*> ParallelSortOp::NextImpl() {
  if (!materialized_) X100_RETURN_IF_ERROR(ParallelMaterialize());
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  if (emit_pos_ >= static_cast<int64_t>(merged_.size())) return nullptr;
  out_->Reset();
  const int n = static_cast<int>(std::min<int64_t>(
      ctx_->vector_size,
      static_cast<int64_t>(merged_.size()) - emit_pos_));
  for (int j = 0; j < n; j++) {
    const auto& [run, row] = merged_[emit_pos_ + j];
    for (int c = 0; c < out_->num_columns(); c++) {
      runs_[run].rows->GatherCell(c, row, out_->column(c), j);
    }
  }
  emit_pos_ += n;
  out_->set_rows(n);
  return out_.get();
}

}  // namespace x100
