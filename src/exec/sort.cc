#include "exec/sort.h"

#include <algorithm>
#include <atomic>

#include "common/task_scheduler.h"

namespace x100 {

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys, int64_t limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {}

Status SortOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  X100_RETURN_IF_ERROR(child_->Open(ctx));
  out_ = std::make_unique<Batch>(child_->output_schema(), ctx->vector_size);
  return Status::OK();
}

namespace {

/// Rows per spilled-run chunk: large enough to amortize the per-chunk
/// disk blocks, small enough that the merge holds only a modest slice of
/// each spilled run in memory.
constexpr int64_t kSortSpillChunkRows = 4096;

/// -1 / 0 / +1 three-way compare of two cells, possibly from different
/// row buffers of the same schema; NULLs compare greater (NULLS LAST
/// ascending).
int CompareCellAB(const RowBuffer& ra, int64_t a, const RowBuffer& rb,
                  int64_t b, int col) {
  const bool an = ra.IsNull(col, a), bn = rb.IsNull(col, b);
  if (an || bn) return an == bn ? 0 : (an ? 1 : -1);
  switch (ra.schema().field(col).type) {
    case TypeId::kBool: {
      const auto x = ra.Col<uint8_t>(col)[a], y = rb.Col<uint8_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI8: {
      const auto x = ra.Col<int8_t>(col)[a], y = rb.Col<int8_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI16: {
      const auto x = ra.Col<int16_t>(col)[a], y = rb.Col<int16_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI32:
    case TypeId::kDate: {
      const auto x = ra.Col<int32_t>(col)[a], y = rb.Col<int32_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kI64: {
      const auto x = ra.Col<int64_t>(col)[a], y = rb.Col<int64_t>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kF64: {
      const auto x = ra.Col<double>(col)[a], y = rb.Col<double>(col)[b];
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case TypeId::kStr: {
      const StrRef& x = ra.Col<StrRef>(col)[a];
      const StrRef& y = rb.Col<StrRef>(col)[b];
      return x < y ? -1 : y < x ? 1 : 0;
    }
  }
  return 0;
}

inline int CompareCell(const RowBuffer& rows, int col, int64_t a,
                       int64_t b) {
  return CompareCellAB(rows, a, rows, b, col);
}

/// Keyed three-way compare across (possibly distinct) run buffers.
int CompareRowsAB(const RowBuffer& ra, int64_t a, const RowBuffer& rb,
                  int64_t b, const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    int c = CompareCellAB(ra, a, rb, b, k.col);
    if (!k.ascending) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

/// Sorts `order` (indexes into `rows`) by `keys`; a non-negative limit
/// keeps only the first `limit` entries (top-N runs).
void SortIndexRun(const RowBuffer& rows, const std::vector<SortKey>& keys,
                  int64_t limit, std::vector<int64_t>* order) {
  auto cmp = [&](int64_t a, int64_t b) {
    for (const SortKey& k : keys) {
      int c = CompareCell(rows, k.col, a, b);
      if (!k.ascending) c = -c;
      if (c != 0) return c < 0;
    }
    return a < b;  // stable tie-break within one run
  };
  if (limit >= 0 && limit < static_cast<int64_t>(order->size())) {
    std::partial_sort(order->begin(), order->begin() + limit, order->end(),
                      cmp);
    order->resize(limit);
  } else {
    std::sort(order->begin(), order->end(), cmp);
  }
}

/// Per-drain-worker run construction under a memory budget: batches
/// append into `*buffer` and grow `*reserv`; a failed reservation sorts
/// what the buffer holds and writes it out as a spilled run (rows
/// serialized in sorted order, kSortSpillChunkRows per chunk), then the
/// worker continues with an empty buffer. No spill device means the
/// failure surfaces as kResourceExhausted and fails the pipeline task.
struct RunBuildState {
  const Schema* schema = nullptr;
  const std::vector<SortKey>* keys = nullptr;
  int64_t limit = -1;
  ExecContext* ctx = nullptr;
  std::unique_ptr<RowBuffer>* buffer = nullptr;  // owned by the operator
  MemoryReservation* reserv = nullptr;

  std::vector<SortRun> spilled_runs;
  int64_t spill_bytes = 0, spill_chunks = 0, spill_rows = 0;

  Status Append(const Batch& b) {
    (*buffer)->AppendBatch(b);
    const auto footprint = [this]() {
      return static_cast<int64_t>((*buffer)->MemoryBytes());
    };
    // The whole resident buffer is the spill unit; buffers under the
    // kMinSpillBytes floor (the pressure comes from other operators)
    // free nothing, so GrowOrSpill force-admits them instead of
    // micro-spilling a few rows per run.
    const auto spill_some = [this]() -> Result<int64_t> {
      const int64_t bytes = static_cast<int64_t>((*buffer)->MemoryBytes());
      if ((*buffer)->rows() == 0 || bytes < kMinSpillBytes) return int64_t{0};
      X100_RETURN_IF_ERROR(SpillResident());
      return bytes;
    };
    return GrowOrSpill(reserv, ctx->spill_device != nullptr, footprint,
                       spill_some);
  }

  /// Sorts the resident rows and writes them as one spilled run. A
  /// failed chunk write (the device filling up) surfaces the IO error;
  /// the chunks already written are owned by the run and freed with it.
  Status SpillResident() {
    RowBuffer& rows = **buffer;
    std::vector<int64_t> order(rows.rows());
    for (int64_t i = 0; i < rows.rows(); i++) order[i] = i;
    SortIndexRun(rows, *keys, limit, &order);
    SortRun run;
    const int64_t n = static_cast<int64_t>(order.size());
    for (int64_t begin = 0; begin < n; begin += kSortSpillChunkRows) {
      const int64_t end = std::min(n, begin + kSortSpillChunkRows);
      std::vector<uint8_t> blob;
      rows.SerializeRowsTo(order, begin, end, &blob);
      SpillFile file;
      X100_ASSIGN_OR_RETURN(file, SpillFile::Write(ctx->spill_device, blob));
      spill_bytes += file.bytes();
      spill_chunks++;
      run.chunks.push_back(std::move(file));
    }
    spill_rows += n;
    spilled_runs.push_back(std::move(run));
    *buffer = std::make_unique<RowBuffer>(*schema);
    reserv->ShrinkTo(static_cast<int64_t>((*buffer)->MemoryBytes()));
    return Status::OK();
  }

  /// Sorts the remaining resident rows into a run referencing `*buffer`;
  /// no run when the buffer is empty (everything already spilled).
  bool FinishResident(SortRun* out) {
    if ((*buffer)->rows() == 0) return false;
    out->rows = buffer->get();
    out->order.resize((*buffer)->rows());
    for (int64_t i = 0; i < (*buffer)->rows(); i++) out->order[i] = i;
    SortIndexRun(**buffer, *keys, limit, &out->order);
    return true;
  }

  void RecordProfile() const {
    if (spill_chunks == 0) return;
    OperatorProfile prof;
    prof.op = "SortSpill";
    prof.rows = spill_rows;
    prof.spill_bytes = spill_bytes;
    prof.spills = spill_chunks;
    ctx->RecordOperator(std::move(prof));
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// SortRunMerger
// ---------------------------------------------------------------------------

Status SortRunMerger::Init(const Schema* schema,
                           const std::vector<SortKey>* keys, int64_t limit,
                           ExecContext* ctx, std::vector<SortRun>* runs) {
  schema_ = schema;
  keys_ = keys;
  limit_ = limit;
  emitted_ = 0;
  ctx_ = ctx;
  cursors_.clear();
  cursors_.resize(runs->size());
  for (size_t i = 0; i < runs->size(); i++) {
    Cursor& c = cursors_[i];
    c.run = &(*runs)[i];
    if (c.run->spilled()) {
      X100_RETURN_IF_ERROR(AdvanceChunk(&c));
    } else if (c.run->order.empty()) {
      c.done = true;
    }
  }
  return Status::OK();
}

Status SortRunMerger::AdvanceChunk(Cursor* c) {
  c->chunk_rows.reset();
  c->mem.Init(ctx_ != nullptr ? ctx_->memory : nullptr);
  c->mem.ShrinkTo(0);
  while (c->chunk < c->run->chunks.size()) {
    std::vector<uint8_t> blob;
    X100_ASSIGN_OR_RETURN(
        blob, c->run->chunks[c->chunk].ReadAll(
                  ctx_ != nullptr ? ctx_->cancel : nullptr));
    c->chunk++;
    std::unique_ptr<RowBuffer> rows;
    X100_ASSIGN_OR_RETURN(
        rows, RowBuffer::Deserialize(*schema_, blob.data(), blob.size()));
    if (rows->rows() == 0) continue;
    c->chunk_rows = std::move(rows);
    c->chunk_pos = 0;
    // One resident chunk per spilled run is the merge's minimum working
    // set — force-charged, released when the cursor advances past it.
    c->mem.ForceGrowTo(static_cast<int64_t>(c->chunk_rows->MemoryBytes()));
    return Status::OK();
  }
  c->done = true;
  return Status::OK();
}

bool SortRunMerger::CurrentRow(const Cursor& c, const RowBuffer** rows,
                               int64_t* row) const {
  if (c.done) return false;
  if (c.run->spilled()) {
    *rows = c.chunk_rows.get();
    *row = c.chunk_pos;
  } else {
    *rows = c.run->rows;
    *row = c.run->order[c.pos];
  }
  return true;
}

Status SortRunMerger::NextBatch(Batch* out, int* n) {
  *n = 0;
  if (ctx_ != nullptr) X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  const int cap = ctx_ != nullptr ? ctx_->vector_size : kDefaultVectorSize;
  while (*n < cap && (limit_ < 0 || emitted_ < limit_)) {
    int best = -1;
    const RowBuffer* best_rows = nullptr;
    int64_t best_row = 0;
    for (size_t i = 0; i < cursors_.size(); i++) {
      const RowBuffer* rows;
      int64_t row;
      if (!CurrentRow(cursors_[i], &rows, &row)) continue;
      if (best < 0 ||
          CompareRowsAB(*rows, row, *best_rows, best_row, *keys_) < 0) {
        best = static_cast<int>(i);
        best_rows = rows;
        best_row = row;
      }
    }
    if (best < 0) break;  // every run exhausted
    for (int c = 0; c < out->num_columns(); c++) {
      best_rows->GatherCell(c, best_row, out->column(c), *n);
    }
    (*n)++;
    emitted_++;
    Cursor& bc = cursors_[best];
    if (bc.run->spilled()) {
      bc.chunk_pos++;
      if (bc.chunk_pos >= bc.chunk_rows->rows()) {
        X100_RETURN_IF_ERROR(AdvanceChunk(&bc));
      }
    } else {
      bc.pos++;
      if (bc.pos >= bc.run->order.size()) bc.done = true;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

Status SortOp::Materialize() {
  rows_ = std::make_unique<RowBuffer>(child_->output_schema());
  rows_mem_.Init(ctx_->memory);
  RunBuildState st;
  st.schema = &child_->output_schema();
  st.keys = &keys_;
  st.limit = limit_;
  st.ctx = ctx_;
  st.buffer = &rows_;
  st.reserv = &rows_mem_;
  while (true) {
    X100_RETURN_IF_ERROR(ctx_->CheckCancel());
    Batch* b;
    X100_ASSIGN_OR_RETURN(b, child_->Next());
    if (b == nullptr) break;
    X100_RETURN_IF_ERROR(st.Append(*b));
  }
  runs_ = std::move(st.spilled_runs);
  SortRun resident;
  if (st.FinishResident(&resident)) runs_.push_back(std::move(resident));
  st.RecordProfile();
  X100_RETURN_IF_ERROR(merger_.Init(&child_->output_schema(), &keys_,
                                    limit_, ctx_, &runs_));
  materialized_ = true;
  return Status::OK();
}

Result<Batch*> SortOp::NextImpl() {
  if (!materialized_) X100_RETURN_IF_ERROR(Materialize());
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  out_->Reset();
  int n;
  X100_RETURN_IF_ERROR(merger_.NextBatch(out_.get(), &n));
  if (n == 0) return nullptr;
  out_->set_rows(n);
  return out_.get();
}

// ---------------------------------------------------------------------------
// ParallelSortOp
// ---------------------------------------------------------------------------

ParallelSortOp::ParallelSortOp(std::vector<OperatorPtr> chains,
                               std::vector<SortKey> keys, int64_t limit,
                               int split_ways)
    : chains_(std::move(chains)),
      keys_(std::move(keys)),
      limit_(limit),
      split_ways_(split_ways < 1 ? 1 : split_ways) {}

Status ParallelSortOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  if (chains_.empty()) {
    return Status::InvalidArgument("parallel sort needs >= 1 input chain");
  }
  // Chains open inside their pipeline tasks, not here.
  out_ = std::make_unique<Batch>(chains_[0]->output_schema(),
                                 ctx->vector_size);
  return Status::OK();
}

void ParallelSortOp::CloseImpl() {
  for (OperatorPtr& c : chains_) {
    if (c) c->Close();
  }
}

Status ParallelSortOp::ParallelMaterialize() {
  TaskScheduler* sched =
      ctx_->scheduler != nullptr ? ctx_->scheduler : TaskScheduler::Global();
  const int W = static_cast<int>(chains_.size());
  const Schema& schema = chains_[0]->output_schema();
  buffers_.clear();
  buffer_mem_.clear();
  runs_.clear();

  if (W > 1) {
    // Shape 1: one run builder per cloned input chain; each task drains
    // and sorts its own run (the input pipeline and the sort overlap),
    // spilling sorted runs when its reservation fails.
    buffers_.resize(W);
    buffer_mem_.resize(W);
    std::vector<std::vector<SortRun>> worker_runs(W);
    X100_RETURN_IF_ERROR(RunPipelineTasks(
        sched, ctx_->quota, ctx_->cancel, W,
        [this, &schema, &worker_runs](int w, TaskGroup& group) -> Status {
          X100_RETURN_IF_ERROR(group.CheckCancel());
          buffers_[w] = std::make_unique<RowBuffer>(schema);
          buffer_mem_[w].Init(ctx_->memory);
          RunBuildState st;
          st.schema = &schema;
          st.keys = &keys_;
          st.limit = limit_;
          st.ctx = ctx_;
          st.buffer = &buffers_[w];
          st.reserv = &buffer_mem_[w];
          Operator* chain = chains_[w].get();
          Status s = chain->Open(ctx_);
          while (s.ok()) {
            s = group.CheckCancel();
            if (!s.ok()) break;
            auto b = chain->Next();
            if (!b.ok()) {
              s = b.status();
              break;
            }
            if (*b == nullptr) break;
            s = st.Append(**b);
          }
          chain->Close();
          X100_RETURN_IF_ERROR(s);
          worker_runs[w] = std::move(st.spilled_runs);
          SortRun resident;
          if (st.FinishResident(&resident)) {
            worker_runs[w].push_back(std::move(resident));
          }
          st.RecordProfile();
          return Status::OK();
        }));
    for (std::vector<SortRun>& wr : worker_runs) {
      for (SortRun& r : wr) runs_.push_back(std::move(r));
    }
  } else {
    // Shape 2: non-clonable input (e.g. an aggregation). One task drains
    // it — spilling sorted runs under memory pressure — then the
    // materialized remainder is range-split across sort tasks. Once
    // anything spilled, range splitting is moot (the merge is streaming
    // anyway), so the remainder becomes a single sorted run.
    buffers_.resize(1);
    buffer_mem_.resize(1);
    buffers_[0] = std::make_unique<RowBuffer>(schema);
    buffer_mem_[0].Init(ctx_->memory);
    RunBuildState st;
    st.schema = &schema;
    st.keys = &keys_;
    st.limit = limit_;
    st.ctx = ctx_;
    st.buffer = &buffers_[0];
    st.reserv = &buffer_mem_[0];
    X100_RETURN_IF_ERROR(RunPipelineTasks(
        sched, ctx_->quota, ctx_->cancel, 1,
        [this, &st](int, TaskGroup& group) -> Status {
          Operator* chain = chains_[0].get();
          Status s = chain->Open(ctx_);
          while (s.ok()) {
            s = group.CheckCancel();
            if (!s.ok()) break;
            auto b = chain->Next();
            if (!b.ok()) {
              s = b.status();
              break;
            }
            if (*b == nullptr) break;
            s = st.Append(**b);
          }
          chain->Close();
          return s;
        }));
    if (!st.spilled_runs.empty()) {
      runs_ = std::move(st.spilled_runs);
      SortRun resident;
      if (st.FinishResident(&resident)) runs_.push_back(std::move(resident));
      st.RecordProfile();
    } else {
      const int64_t n = buffers_[0]->rows();
      // Don't spawn more range tasks than vectors of data to sort.
      const int ways = static_cast<int>(
          std::max<int64_t>(1, std::min<int64_t>(split_ways_,
                                                 (n + 1023) / 1024)));
      runs_.resize(ways);
      X100_RETURN_IF_ERROR(RunPipelineTasks(
          sched, ctx_->quota, ctx_->cancel, ways,
          [this, n, ways](int r, TaskGroup& group) -> Status {
            X100_RETURN_IF_ERROR(group.CheckCancel());
            const int64_t lo = n * r / ways, hi = n * (r + 1) / ways;
            SortRun& run = runs_[r];
            run.rows = buffers_[0].get();
            run.order.resize(hi - lo);
            for (int64_t i = lo; i < hi; i++) run.order[i - lo] = i;
            SortIndexRun(*buffers_[0], keys_, limit_, &run.order);
            return Status::OK();
          }));
    }
  }

  X100_RETURN_IF_ERROR(
      merger_.Init(&schema, &keys_, limit_, ctx_, &runs_));
  materialized_ = true;
  return Status::OK();
}

Result<Batch*> ParallelSortOp::NextImpl() {
  if (!materialized_) X100_RETURN_IF_ERROR(ParallelMaterialize());
  X100_RETURN_IF_ERROR(ctx_->CheckCancel());
  out_->Reset();
  int n;
  X100_RETURN_IF_ERROR(merger_.NextBatch(out_.get(), &n));
  if (n == 0) return nullptr;
  out_->set_rows(n);
  return out_.get();
}

}  // namespace x100
