#include "rewriter/rewriter.h"

namespace x100 {

namespace {

bool IsConst(const ExprPtr& e) {
  return e->kind == Expr::Kind::kConst && !e->constant.is_null();
}
bool IsBoolConst(const ExprPtr& e, bool value) {
  return IsConst(e) && e->constant.type() == TypeId::kBool &&
         e->constant.AsBool() == value;
}

}  // namespace

Result<ExprPtr> Rewriter::ExpandFunctions(ExprPtr e) {
  if (e->kind != Expr::Kind::kCall) return e;
  for (auto& a : e->args) {
    X100_ASSIGN_OR_RETURN(a, ExpandFunctions(a));
  }
  const std::string& fn = e->fn;
  auto bump = [&](const char* rule) { stats_[rule]++; };

  if (fn == "between" || fn == "not_between") {
    if (e->args.size() != 3) {
      return Status::InvalidArgument("between expects 3 arguments");
    }
    bump("expand.between");
    ExprPtr in = And(Ge(CloneExpr(e->args[0]), e->args[1]),
                     Le(e->args[0], e->args[2]));
    return fn == "between" ? in : Not(in);
  }
  if (fn == "coalesce") {
    if (e->args.size() < 2) {
      return Status::InvalidArgument("coalesce expects >= 2 arguments");
    }
    bump("expand.coalesce");
    // Right-fold: coalesce(a, b, c) = if isnotnull(a) a else coalesce(b, c).
    ExprPtr acc = e->args.back();
    for (int i = static_cast<int>(e->args.size()) - 2; i >= 0; i--) {
      acc = Call("ifthenelse", {Call("isnotnull", {CloneExpr(e->args[i])}),
                                e->args[i], acc});
    }
    return acc;
  }
  if (fn == "left") {
    bump("expand.left");
    return Call("substring",
                {e->args[0], Lit(Value::I32(1)), e->args[1]});
  }
  if (fn == "right") {
    bump("expand.right");
    // substring(s, length(s) - n + 1, n)
    ExprPtr start = Add(Sub(Call("length", {CloneExpr(e->args[0])}),
                            CloneExpr(e->args[1])),
                        Lit(Value::I32(1)));
    return Call("substring", {e->args[0], start, e->args[1]});
  }
  if (fn == "sign") {
    bump("expand.sign");
    return Call("ifthenelse",
                {Lt(CloneExpr(e->args[0]), Lit(Value::I64(0))),
                 Lit(Value::I64(-1)),
                 Call("ifthenelse", {Gt(e->args[0], Lit(Value::I64(0))),
                                     Lit(Value::I64(1)),
                                     Lit(Value::I64(0))})});
  }
  if (fn == "abs") {
    bump("expand.abs");
    return Call("ifthenelse",
                {Lt(CloneExpr(e->args[0]), Lit(Value::I64(0))),
                 Call("neg", {CloneExpr(e->args[0])}), e->args[0]});
  }
  if (fn == "date_trunc_month") {
    bump("expand.date_trunc");
    return Call("trunc_month", {e->args[0]});
  }
  return e;
}

ExprPtr Rewriter::FoldConstants(ExprPtr e) {
  if (e->kind != Expr::Kind::kCall) return e;
  for (auto& a : e->args) a = FoldConstants(a);
  bool all_const = !e->args.empty();
  for (const auto& a : e->args) all_const &= IsConst(a);
  if (!all_const) return e;

  const std::string& fn = e->fn;
  auto lit = [&](Value v) {
    stats_["fold.constant"]++;
    return Lit(std::move(v));
  };
  const Value& a = e->args[0]->constant;
  const bool numeric2 =
      e->args.size() == 2 && IsNumericType(a.type()) &&
      IsNumericType(e->args[1]->constant.type());
  if (numeric2) {
    const Value& b = e->args[1]->constant;
    const bool flt = a.type() == TypeId::kF64 || b.type() == TypeId::kF64;
    if (fn == "add") {
      return flt ? lit(Value::F64(a.AsF64() + b.AsF64()))
                 : lit(Value::I64(a.AsI64() + b.AsI64()));
    }
    if (fn == "sub") {
      return flt ? lit(Value::F64(a.AsF64() - b.AsF64()))
                 : lit(Value::I64(a.AsI64() - b.AsI64()));
    }
    if (fn == "mul") {
      return flt ? lit(Value::F64(a.AsF64() * b.AsF64()))
                 : lit(Value::I64(a.AsI64() * b.AsI64()));
    }
    if (fn == "div" && ((flt && b.AsF64() != 0) || (!flt && b.AsI64() != 0))) {
      return flt ? lit(Value::F64(a.AsF64() / b.AsF64()))
                 : lit(Value::I64(a.AsI64() / b.AsI64()));
    }
    if (fn == "eq") return lit(Value::Bool(a.AsF64() == b.AsF64()));
    if (fn == "ne") return lit(Value::Bool(a.AsF64() != b.AsF64()));
    if (fn == "lt") return lit(Value::Bool(a.AsF64() < b.AsF64()));
    if (fn == "le") return lit(Value::Bool(a.AsF64() <= b.AsF64()));
    if (fn == "gt") return lit(Value::Bool(a.AsF64() > b.AsF64()));
    if (fn == "ge") return lit(Value::Bool(a.AsF64() >= b.AsF64()));
  }
  if (e->args.size() == 2 && a.type() == TypeId::kStr &&
      e->args[1]->constant.type() == TypeId::kStr) {
    const Value& b = e->args[1]->constant;
    if (fn == "concat") return lit(Value::Str(a.AsStr() + b.AsStr()));
    if (fn == "eq") return lit(Value::Bool(a.AsStr() == b.AsStr()));
    if (fn == "ne") return lit(Value::Bool(a.AsStr() != b.AsStr()));
  }
  if (e->args.size() == 1 && a.type() == TypeId::kStr) {
    if (fn == "length") {
      return lit(Value::I32(static_cast<int32_t>(a.AsStr().size())));
    }
    if (fn == "upper" || fn == "lower") {
      std::string s = a.AsStr();
      for (char& c : s) {
        c = fn == "upper" ? static_cast<char>(toupper(c))
                          : static_cast<char>(tolower(c));
      }
      return lit(Value::Str(std::move(s)));
    }
  }
  if (e->args.size() == 2 && a.type() == TypeId::kBool &&
      e->args[1]->constant.type() == TypeId::kBool) {
    if (fn == "and") return lit(Value::Bool(a.AsBool() && e->args[1]->constant.AsBool()));
    if (fn == "or") return lit(Value::Bool(a.AsBool() || e->args[1]->constant.AsBool()));
  }
  if (e->args.size() == 1 && a.type() == TypeId::kBool && fn == "not") {
    return lit(Value::Bool(!a.AsBool()));
  }
  return e;
}

ExprPtr Rewriter::SimplifyPredicate(ExprPtr e) {
  if (e->kind != Expr::Kind::kCall) return e;
  for (auto& a : e->args) a = SimplifyPredicate(a);
  auto bump = [&] { stats_["simplify.predicate"]++; };
  if (e->fn == "and") {
    if (IsBoolConst(e->args[0], true)) { bump(); return e->args[1]; }
    if (IsBoolConst(e->args[1], true)) { bump(); return e->args[0]; }
    if (IsBoolConst(e->args[0], false) || IsBoolConst(e->args[1], false)) {
      bump();
      return Lit(Value::Bool(false));
    }
  }
  if (e->fn == "or") {
    if (IsBoolConst(e->args[0], false)) { bump(); return e->args[1]; }
    if (IsBoolConst(e->args[1], false)) { bump(); return e->args[0]; }
    if (IsBoolConst(e->args[0], true) || IsBoolConst(e->args[1], true)) {
      bump();
      return Lit(Value::Bool(true));
    }
  }
  if (e->fn == "not" && e->args[0]->kind == Expr::Kind::kCall &&
      e->args[0]->fn == "not") {
    bump();
    return e->args[0]->args[0];
  }
  return e;
}

Result<ExprPtr> Rewriter::RewriteExpr(ExprPtr e) {
  if (e == nullptr) return e;
  if (opts_.expand_functions) {
    X100_ASSIGN_OR_RETURN(e, ExpandFunctions(std::move(e)));
  }
  if (opts_.fold_constants) e = FoldConstants(std::move(e));
  if (opts_.simplify_predicates) e = SimplifyPredicate(std::move(e));
  return e;
}

namespace {

/// True if the subtree is a Select/Project chain over a single Scan —
/// the shape the parallelizer clones per producer.
bool IsPartitionablePipeline(const AlgebraPtr& node) {
  if (node->kind == AlgebraNode::Kind::kScan) {
    return node->morsel_group < 0;  // not already parallelized
  }
  if (node->kind == AlgebraNode::Kind::kSelect ||
      node->kind == AlgebraNode::Kind::kProject) {
    return IsPartitionablePipeline(node->children[0]);
  }
  return false;
}

/// Marks the pipeline's scan as morsel-driven. Clones sharing `group_id`
/// draw block groups from one dynamic MorselSource at execution time —
/// no static partitioning, so a skewed group cannot serialize a producer.
void MarkMorselDriven(const AlgebraPtr& node, int group_id) {
  if (node->kind == AlgebraNode::Kind::kScan) {
    node->morsel_group = group_id;
    return;
  }
  MarkMorselDriven(node->children[0], group_id);
}

}  // namespace

Result<AlgebraPtr> Rewriter::Parallelize(AlgebraPtr plan, int workers) {
  if (workers <= 1) return plan;
  if (plan->kind != AlgebraNode::Kind::kAggr ||
      !IsPartitionablePipeline(plan->children[0])) {
    // Recurse: parallelizable aggregations may sit under Order/Project.
    for (auto& c : plan->children) {
      X100_ASSIGN_OR_RETURN(c, Parallelize(c, workers));
    }
    return plan;
  }
  stats_["parallelize.aggr"]++;

  // Decompose AVG into SUM + COUNT so partials are mergeable.
  std::vector<AggItem> partial_aggs;
  struct FinalSpec {
    AggKind merge_kind;     // how the final Aggr merges the partial
    std::string partial;    // partial column name
    std::string partial2;   // count column for avg
    std::string name;       // output name
    bool is_avg;
  };
  std::vector<FinalSpec> finals;
  for (const AggItem& a : plan->aggs) {
    if (a.kind == AggKind::kAvg) {
      partial_aggs.push_back(
          {AggKind::kSum, CloneExpr(a.input), a.name + "$sum"});
      partial_aggs.push_back(
          {AggKind::kCount, CloneExpr(a.input), a.name + "$cnt"});
      finals.push_back(
          {AggKind::kSum, a.name + "$sum", a.name + "$cnt", a.name, true});
    } else {
      partial_aggs.push_back(
          {a.kind, a.input ? CloneExpr(a.input) : nullptr, a.name});
      // COUNT partials merge by summing.
      finals.push_back({a.kind == AggKind::kCount ? AggKind::kSum : a.kind,
                        a.name, "", a.name, false});
    }
  }

  // One partial pipeline per worker; all clones share one morsel source
  // and pull block groups dynamically (morsel-driven parallelism).
  const int morsel_group = next_morsel_group_++;
  auto xchg = std::make_shared<AlgebraNode>();
  xchg->kind = AlgebraNode::Kind::kXchg;
  xchg->parallelism = workers;
  for (int w = 0; w < workers; w++) {
    AlgebraPtr partial = CloneAlgebra(plan->children[0]);
    MarkMorselDriven(partial, morsel_group);
    std::vector<ProjectItem> keys;
    for (const ProjectItem& k : plan->group_by) {
      keys.push_back({k.name, CloneExpr(k.expr)});
    }
    std::vector<AggItem> aggs;
    for (const AggItem& a : partial_aggs) {
      aggs.push_back({a.kind, a.input ? CloneExpr(a.input) : nullptr,
                      a.name});
    }
    xchg->children.push_back(
        AggrNode(std::move(partial), std::move(keys), std::move(aggs)));
  }

  // Final merge aggregation over the exchange.
  std::vector<ProjectItem> final_keys;
  bool any_avg = false;
  for (const ProjectItem& k : plan->group_by) {
    final_keys.push_back({k.name, Col(k.name)});
  }
  std::vector<AggItem> final_aggs;
  for (const FinalSpec& f : finals) {
    any_avg |= f.is_avg;
    if (f.is_avg) {
      final_aggs.push_back({AggKind::kSum, Col(f.partial), f.partial});
      final_aggs.push_back({AggKind::kSum, Col(f.partial2), f.partial2});
    } else {
      final_aggs.push_back({f.merge_kind, Col(f.partial), f.name});
    }
  }
  AlgebraPtr final_aggr =
      AggrNode(xchg, std::move(final_keys), std::move(final_aggs));
  if (!any_avg) return final_aggr;

  // Post-project to materialize avg = sum / count and restore column order.
  std::vector<ProjectItem> post;
  for (const ProjectItem& k : plan->group_by) {
    post.push_back({k.name, Col(k.name)});
  }
  for (const FinalSpec& f : finals) {
    if (f.is_avg) {
      post.push_back({f.name, Div(Col(f.partial), Col(f.partial2))});
    } else {
      post.push_back({f.name, Col(f.name)});
    }
  }
  return ProjectNode(final_aggr, std::move(post));
}

Result<AlgebraPtr> Rewriter::RewriteNode(AlgebraPtr node) {
  for (auto& c : node->children) {
    X100_ASSIGN_OR_RETURN(c, RewriteNode(c));
  }
  if (node->predicate) {
    X100_ASSIGN_OR_RETURN(node->predicate, RewriteExpr(node->predicate));
  }
  for (auto& item : node->items) {
    X100_ASSIGN_OR_RETURN(item.expr, RewriteExpr(item.expr));
  }
  for (auto& item : node->group_by) {
    X100_ASSIGN_OR_RETURN(item.expr, RewriteExpr(item.expr));
  }
  for (auto& agg : node->aggs) {
    if (agg.input) {
      X100_ASSIGN_OR_RETURN(agg.input, RewriteExpr(agg.input));
    }
  }
  // §"NULL intricacies": pick the anti-join flavor. The cross compiler
  // marks NOT IN joins as null-aware candidates; when the key cannot be
  // NULL the cheaper plain anti join is safe.
  if (opts_.rewrite_anti_joins && node->kind == AlgebraNode::Kind::kJoin &&
      node->join_type == JoinType::kAntiNullAware &&
      !node->null_aware_candidate) {
    node->join_type = JoinType::kAnti;
    stats_["antijoin.downgrade"]++;
  }
  return node;
}

Result<AlgebraPtr> Rewriter::Rewrite(AlgebraPtr plan) {
  X100_ASSIGN_OR_RETURN(plan, RewriteNode(std::move(plan)));
  if (opts_.parallelism > 1) {
    X100_ASSIGN_OR_RETURN(plan, Parallelize(std::move(plan),
                                            opts_.parallelism));
  }
  return plan;
}

}  // namespace x100
