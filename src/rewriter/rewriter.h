// The Vectorwise rewriter — a rule-based rewriting system over the X100
// algebra (paper §"X100 rewriter": "a column-oriented rewriter module
// inside the X100 system … a rule-based rewriting system").
//
// Rules implemented (each maps to a paper work item):
//  * FunctionExpansion   — §"Many Functions": "Some functions were
//    implemented in the rewriter phase, by simplifying them or expressing
//    as combinations of other functions." (BETWEEN, COALESCE, LEFT, RIGHT,
//    SIGN, integer ABS, NOT LIKE, date_trunc…)
//  * ConstantFolding     — evaluate constant subtrees at rewrite time.
//  * PredicateSimplify   — boolean identities (AND true, OR false, NOT NOT).
//  * Parallelizer        — §"Multi-core": rewrites Aggr over a scan
//    pipeline into FinalAggr(Xchg(N × PartialAggr(morsel-driven scan))).
//    Producer clones share one MorselSource and pull block groups
//    dynamically (no static partitioning). AVG decomposes to SUM+COUNT.
//    LEGACY: the engine's default path no longer routes parallelism
//    through this rule — the physical planner decomposes plans into
//    morsel-parallel pipelines directly (engine/physical_plan.h). The
//    rule remains for explicitly-rewritten plans and as the exchange-
//    based reference implementation.
//  * AntiJoinNullRule    — §"NULL intricacies": NOT-IN joins with nullable
//    keys become null-aware anti joins; non-nullable keys downgrade to the
//    cheaper plain anti join.
//
// The NULL two-column decomposition of §"NULLs" lives structurally in the
// executor (ExprProgram evaluates values NULL-obliviously and ORs
// indicator columns) — see DESIGN.md §5.
#ifndef X100_REWRITER_REWRITER_H_
#define X100_REWRITER_REWRITER_H_

#include <map>
#include <string>

#include "algebra/algebra.h"

namespace x100 {

/// Rewrite statistics: rule name -> number of applications (reported by
/// bench_e11 and the monitoring example).
using RewriteStats = std::map<std::string, int64_t>;

class Rewriter {
 public:
  struct Options {
    bool expand_functions = true;
    bool fold_constants = true;
    bool simplify_predicates = true;
    /// > 1 enables the parallelizer with this worker count.
    int parallelism = 1;
    bool rewrite_anti_joins = true;
  };

  Rewriter() = default;
  explicit Rewriter(Options opts) : opts_(opts) {}

  /// Applies all enabled rules; returns the rewritten plan.
  Result<AlgebraPtr> Rewrite(AlgebraPtr plan);

  const RewriteStats& stats() const { return stats_; }

  // Individual passes (exposed for tests and E12).
  Result<ExprPtr> ExpandFunctions(ExprPtr e);
  ExprPtr FoldConstants(ExprPtr e);
  ExprPtr SimplifyPredicate(ExprPtr e);
  Result<AlgebraPtr> Parallelize(AlgebraPtr plan, int workers);

 private:
  Result<AlgebraPtr> RewriteNode(AlgebraPtr node);
  Result<ExprPtr> RewriteExpr(ExprPtr e);

  Options opts_;
  RewriteStats stats_;
  /// Distinct id per parallelized scan: clones sharing an id share one
  /// MorselSource when the physical plan is built.
  int next_morsel_group_ = 0;
};

}  // namespace x100

#endif  // X100_REWRITER_REWRITER_H_
